/**
 * @file
 * Chaos scenario bench: runs a battery of fault-injection scenarios on
 * small serving clusters and reports service-level resilience metrics —
 * time-to-recover, SLO-violation rate, drops and availability — as a
 * machine-readable JSON report (schema dilu-chaos-bench/1).
 *
 * Every scenario is an ExperimentSpec executed by the Experiment
 * driver (src/experiment/) — the same declarative surface as the
 * checked-in experiments/ gallery and `dilu_run` — so this file only
 * declares *what* each scenario is, not how to wire it. The quantities
 * are *simulated* outcomes, not wall-clock timings: deterministic
 * under --seed and diffable across machines.
 *
 * Scenarios:
 *  - gpu_failure_steady:   one GPU dies under steady Poisson load and
 *                          later returns.
 *  - node_failure_burst:   a whole node serving a heavy + a light
 *                          function dies mid-burst, recovers; the
 *                          displaced batch is re-placed by the joint
 *                          (best-fit-decreasing) recovery bin-packer.
 *  - node_failure_burst_greedy: the same fault with the greedy
 *                          per-instance recovery path — the joint
 *                          scenario's TTR must not exceed this one's.
 *  - drain_maintenance:    a node is drained (live migration) and
 *                          undrained.
 *  - coldstart_inflation_surge: a traffic surge hits while cold starts
 *                          run 3x slow (registry pressure).
 *  - degraded_straggler:   a GPU loses half its SMs and another
 *                          straggles at 2.5x while serving; both heal.
 *  - overload_brownout:    a 4x overload slams a best-effort function
 *                          sharing the cluster with a critical one;
 *                          the admission layer (docs/OVERLOAD.md) must
 *                          shed lowest-class-first, so critical
 *                          availability >= best-effort's is a hard
 *                          assertion, not just a reported number.
 *
 * Flags: --quick (CI smoke), --seed N (echoed in the JSON), --out FILE.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "experiment/experiment.h"
#include "models/model_catalog.h"

namespace {

using namespace dilu;
using experiment::ArrivalKind;
using experiment::ExperimentSpec;

struct ScenarioResult {
  std::string name;
  int faults = 0;
  int disruptive = 0;
  int recovered = 0;
  double mean_ttr_s = 0.0;
  double max_ttr_s = 0.0;
  std::int64_t completed = 0;
  std::int64_t dropped = 0;
  double svr_percent = 0.0;
  double availability_percent = 0.0;
  int recovery_cold_starts = 0;
  std::int64_t shed = 0;      ///< admission + retry sheds, all fns
  double mean_ttsr_s = 0.0;   ///< time-to-shed-recovery (0 if none)
};

/** Execute a spec and project the primary (first) function's metrics. */
ScenarioResult
RunScenario(ExperimentSpec spec, std::uint64_t seed)
{
  experiment::RunOptions opts;
  opts.seed = seed;
  experiment::Experiment exp(std::move(spec), opts);
  const experiment::ExperimentResult res = exp.Run();
  const experiment::FunctionResult& fn = res.functions.front();
  ScenarioResult r;
  r.name = res.experiment;
  r.faults = res.chaos.injected;
  r.disruptive = res.chaos.disruptive;
  r.recovered = res.chaos.recovered;
  r.mean_ttr_s = res.chaos.mean_ttr_s;
  r.max_ttr_s = res.chaos.max_ttr_s;
  r.completed = fn.completed;
  r.dropped = fn.dropped;
  r.svr_percent = fn.svr_percent;
  r.availability_percent = fn.availability_percent;
  r.recovery_cold_starts = fn.recovery_cold_starts;
  r.shed = res.total_shed;
  r.mean_ttsr_s = res.chaos.mean_ttsr_s;
  return r;
}

ExperimentSpec
GpuFailureSteady(bool quick)
{
  const TimeUs horizon = Sec(quick ? 90 : 180);
  ExperimentSpec s("gpu_failure_steady");
  s.cluster().nodes = 2;
  auto& d = s.AddInference("bert-base");
  d.provision = 2;
  d.scaler = "dilu-lazy";
  s.AddPoisson(0, 40.0, horizon);
  s.chaos().FailGpu(Sec(30), 0).RecoverGpu(Sec(quick ? 60 : 120), 0);
  s.RunFor(horizon + Sec(5));
  return s;
}

/**
 * A node serving a heavy (llama2-7b) and a light (resnet152) function
 * dies mid-burst: the displaced batch is heterogeneous, which is where
 * the joint best-fit-decreasing recovery earns its keep over the
 * greedy victim-order path (`recovery` selects the policy; the JSON
 * carries both runs so the TTR gap is diffable).
 */
ExperimentSpec
NodeFailureBurst(bool quick, const std::string& recovery,
                 const std::string& label)
{
  const int duration_s = quick ? 120 : 180;
  ExperimentSpec s(label);
  s.cluster().nodes = 3;
  s.cluster().recovery = recovery;
  auto& light = s.AddInference("resnet152");
  light.provision = 2;
  light.scaler = "dilu-lazy";
  s.AddInference("llama2-7b").provision = 1;
  auto& w = s.AddTrace(0, ArrivalKind::kBursty, 80.0, Sec(duration_s));
  w.scale = 1.6;
  w.burst_len = Sec(40);
  w.burst_gap = Sec(50);
  s.chaos().FailNode(Sec(60), 0).RecoverNode(Sec(quick ? 90 : 130), 0);
  s.RunFor(Sec(duration_s + 5));
  return s;
}

ExperimentSpec
DrainMaintenance(bool quick)
{
  const TimeUs horizon = Sec(quick ? 90 : 150);
  ExperimentSpec s("drain_maintenance");
  s.cluster().nodes = 2;
  auto& d = s.AddInference("roberta-large");
  d.provision = 2;
  d.scaler = "dilu-lazy";
  s.AddPoisson(0, 30.0, horizon);
  s.chaos().DrainNode(Sec(40), 0).UndrainNode(Sec(quick ? 70 : 100), 0);
  s.RunFor(horizon + Sec(5));
  return s;
}

ExperimentSpec
ColdstartInflationSurge(bool quick)
{
  const TimeUs horizon = Sec(quick ? 100 : 160);
  // Load sized against the profiled single-instance capacity so the
  // surge forces scale-out launches that pay 3x cold starts; a GPU
  // failure inside the window stacks a recovery launch on top.
  const double base_rps =
      profiler::ProfiledServingRps(models::GetModel("bert-base")) * 0.8;

  ExperimentSpec s("coldstart_inflation_surge");
  s.cluster().nodes = 2;
  auto& d = s.AddInference("bert-base");
  d.provision = 1;
  d.scaler = "dilu-lazy";
  s.AddPoisson(0, base_rps, horizon);
  s.chaos()
      .InflateColdStarts(Sec(20), 3.0, Sec(quick ? 60 : 100))
      .Surge(Sec(25), 0, base_rps * 1.5, Sec(quick ? 40 : 70))
      .FailGpu(Sec(35), 0);
  s.RunFor(horizon + Sec(5));
  return s;
}

/**
 * Degraded-health path end to end: partial SM loss on one GPU, a 2.5x
 * straggler on another, both healing later. Not disruptive (nothing is
 * displaced — the KLC/scaler signal absorbs it), so the interesting
 * outputs are SVR / completed, not TTR.
 */
ExperimentSpec
DegradedStraggler(bool quick)
{
  const TimeUs horizon = Sec(quick ? 90 : 150);
  ExperimentSpec s("degraded_straggler");
  s.cluster().nodes = 2;
  auto& d = s.AddInference("bert-base");
  d.provision = 2;
  d.scaler = "dilu-lazy";
  s.AddPoisson(0, 40.0, horizon);
  s.chaos()
      .DegradeGpu(Sec(20), 0, 0.5)
      .StraggleGpu(Sec(30), 1, 2.5)
      .RecoverGpu(Sec(quick ? 60 : 100), 0)
      .RecoverGpu(Sec(quick ? 70 : 110), 1);
  s.RunFor(horizon + Sec(5));
  return s;
}

/**
 * Priority shedding under a 4x best-effort overload next to a critical
 * function. The brownout ladder (docs/OVERLOAD.md) sheds strictly
 * lowest-class-first, so the critical function must come out at least
 * as available as the best-effort one — checked here as an invariant.
 */
ExperimentSpec
OverloadBrownout(bool quick)
{
  const TimeUs horizon = Sec(quick ? 60 : 120);
  ExperimentSpec s("overload_brownout");
  s.cluster().nodes = 2;
  auto& crit = s.AddInference("resnet152");
  crit.provision = 2;
  crit.scaler = "dilu-lazy";
  crit.fn.admission_class = ServiceClass::kCritical;
  crit.fn.queue_cap = 512;
  crit.fn.retry_budget = 2;
  crit.fn.retry_backoff = Sec(1);
  auto& best = s.AddInference("resnet152");
  best.provision = 1;
  best.scaler = "dilu-lazy";
  best.fn.admission_class = ServiceClass::kBestEffort;
  best.fn.queue_cap = 8;
  best.fn.retry_budget = 1;
  best.fn.deadline = Ms(250);
  s.AddPoisson(0, 40.0, horizon);
  s.AddPoisson(1, 30.0, horizon);
  s.chaos().Overload(Sec(20), 1, 4.0, Sec(quick ? 20 : 40));
  s.RunFor(horizon + Sec(5));
  return s;
}

/** OverloadBrownout needs both functions, not just the first one. */
ScenarioResult
RunOverloadBrownout(bool quick, std::uint64_t seed)
{
  experiment::RunOptions opts;
  opts.seed = seed;
  experiment::Experiment exp(OverloadBrownout(quick), opts);
  const experiment::ExperimentResult res = exp.Run();
  const experiment::FunctionResult& crit = res.functions[0];
  const experiment::FunctionResult& best = res.functions[1];
  // The point of priority shedding: overload pain lands on the lowest
  // class first. A violation is a bug, not a data point.
  DILU_CHECK(crit.availability_percent >= best.availability_percent);
  DILU_CHECK(crit.peak_queue <= 512);

  ScenarioResult r;
  r.name = res.experiment;
  r.faults = res.chaos.injected;
  r.disruptive = res.chaos.disruptive;
  r.recovered = res.chaos.recovered;
  r.completed = crit.completed;
  r.dropped = crit.dropped;
  r.svr_percent = crit.svr_percent;
  r.availability_percent = crit.availability_percent;
  r.recovery_cold_starts = crit.recovery_cold_starts;
  r.shed = res.total_shed;
  r.mean_ttsr_s = res.chaos.mean_ttsr_s;
  return r;
}

void
WriteJson(std::FILE* out, const std::vector<ScenarioResult>& results,
          bool quick, std::uint64_t seed)
{
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"dilu-chaos-bench/2\",\n");
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"faults\": %d, \"disruptive\": %d, "
        "\"recovered\": %d, \"mean_ttr_s\": %.3f, \"max_ttr_s\": %.3f, "
        "\"completed\": %lld, \"dropped\": %lld, "
        "\"svr_percent\": %.3f, \"availability_percent\": %.3f, "
        "\"recovery_cold_starts\": %d, \"shed\": %lld, "
        "\"mean_ttsr_s\": %.3f}%s\n",
        r.name.c_str(), r.faults, r.disruptive, r.recovered, r.mean_ttr_s,
        r.max_ttr_s, static_cast<long long>(r.completed),
        static_cast<long long>(r.dropped), r.svr_percent,
        r.availability_percent, r.recovery_cold_starts,
        static_cast<long long>(r.shed), r.mean_ttsr_s,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int
main(int argc, char** argv)
{
  bench::CliOptions opts;
  if (!bench::ParseCli(argc, argv, &opts, /*default_seed=*/1)) return 2;
  const bool quick = opts.quick;

  std::vector<ScenarioResult> results;
  results.push_back(RunScenario(GpuFailureSteady(quick), opts.seed));
  results.push_back(RunScenario(
      NodeFailureBurst(quick, "joint", "node_failure_burst"), opts.seed));
  results.push_back(RunScenario(
      NodeFailureBurst(quick, "greedy", "node_failure_burst_greedy"),
      opts.seed));
  results.push_back(RunScenario(DrainMaintenance(quick), opts.seed));
  results.push_back(RunScenario(ColdstartInflationSurge(quick), opts.seed));
  results.push_back(RunScenario(DegradedStraggler(quick), opts.seed));
  results.push_back(RunOverloadBrownout(quick, opts.seed));
  for (const ScenarioResult& r : results) {
    std::fprintf(stderr,
                 "%-28s faults=%d recovered=%d/%d ttr=%.1fs svr=%.2f%% "
                 "drops=%lld avail=%.2f%%\n",
                 r.name.c_str(), r.faults, r.recovered, r.disruptive,
                 r.mean_ttr_s, r.svr_percent,
                 static_cast<long long>(r.dropped),
                 r.availability_percent);
  }

  return bench::EmitReport(opts, [&](std::FILE* f) {
    WriteJson(f, results, quick, opts.seed);
  });
}
