/**
 * @file
 * Chaos scenario bench: runs a battery of fault-injection scenarios on
 * small serving clusters and reports service-level resilience metrics —
 * time-to-recover, SLO-violation rate, drops and availability — as a
 * machine-readable JSON report (schema dilu-chaos-bench/1).
 *
 * Unlike the hot-path harness (bench_harness), the quantities here are
 * *simulated* outcomes, not wall-clock timings: they are deterministic
 * under --seed and diffable across machines, so the JSON doubles as a
 * regression surface for the fault model.
 *
 * Scenarios:
 *  - gpu_failure_steady:   one GPU dies under steady Poisson load and
 *                          later returns.
 *  - node_failure_burst:   a whole node serving a heavy + a light
 *                          function dies mid-burst, recovers; the
 *                          displaced batch is re-placed by the joint
 *                          (best-fit-decreasing) recovery bin-packer.
 *  - node_failure_burst_greedy: the same fault with the greedy
 *                          per-instance recovery path — the joint
 *                          scenario's TTR must not exceed this one's.
 *  - drain_maintenance:    a node is drained (live migration) and
 *                          undrained.
 *  - coldstart_inflation_surge: a traffic surge hits while cold starts
 *                          run 3x slow (registry pressure).
 *  - degraded_straggler:   a GPU loses half its SMs and another
 *                          straggles at 2.5x while serving; both heal.
 *                          Exercises the degraded-health path end to
 *                          end (also under --quick, so the CI chaos
 *                          smoke covers it).
 *
 * Flags:
 *  --quick      shorter simulations (CI smoke)
 *  --seed N     cluster + workload seed (echoed in the JSON)
 *  --out FILE   write the JSON report to FILE instead of stdout
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos_engine.h"
#include "cluster/cluster.h"
#include "scaling/global_scaler.h"
#include "workload/arrival.h"
#include "workload/azure_traces.h"

namespace {

using namespace dilu;

struct ScenarioResult {
  std::string name;
  int faults = 0;
  int disruptive = 0;
  int recovered = 0;
  double mean_ttr_s = 0.0;
  double max_ttr_s = 0.0;
  std::int64_t completed = 0;
  std::int64_t dropped = 0;
  double svr_percent = 0.0;
  double availability_percent = 0.0;
  int recovery_cold_starts = 0;
};

/** Shared rig: a cluster serving one autoscaled inference function. */
struct Rig {
  std::unique_ptr<cluster::ClusterRuntime> rt;
  FunctionId fn = kInvalidFunction;

  Rig(int nodes, std::uint64_t seed, const std::string& model,
      int provisioned, const std::string& recovery = "joint")
  {
    cluster::ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.seed = seed;
    cfg.recovery = recovery;
    rt = std::make_unique<cluster::ClusterRuntime>(cfg);
    core::FunctionSpec spec;
    spec.model = model;
    spec.type = TaskType::kInference;
    fn = rt->Deploy(spec);
    for (int i = 0; i < provisioned; ++i) {
      rt->LaunchInference(fn, /*cold=*/false);
    }
    rt->EnableAutoscaler(fn, std::make_unique<scaling::DiluLazyScaler>());
  }

  ScenarioResult Finish(const std::string& name,
                        const chaos::ChaosEngine& engine) const
  {
    const chaos::ChaosVerdict v = engine.Verdict();
    const cluster::FunctionMetrics& m = rt->metrics().function(fn);
    ScenarioResult r;
    r.name = name;
    r.faults = v.injected;
    r.disruptive = v.disruptive;
    r.recovered = v.recovered;
    r.mean_ttr_s = v.mean_ttr_s;
    r.max_ttr_s = v.max_ttr_s;
    r.completed = m.completed;
    r.dropped = m.dropped;
    r.svr_percent = m.SvrPercent();
    r.availability_percent = m.AvailabilityPercent();
    r.recovery_cold_starts = m.recovery_cold_starts;
    return r;
  }
};

ScenarioResult
RunGpuFailureSteady(bool quick, std::uint64_t seed)
{
  const TimeUs horizon = Sec(quick ? 90 : 180);
  Rig rig(/*nodes=*/2, seed, "bert-base", /*provisioned=*/2);
  rig.rt->AttachArrivals(
      rig.fn,
      std::make_unique<workload::PoissonArrivals>(40.0, Rng(seed + 1)),
      horizon);

  chaos::ScenarioSpec spec("gpu_failure_steady");
  spec.FailGpu(Sec(30), 0).RecoverGpu(Sec(quick ? 60 : 120), 0);
  chaos::ChaosEngine engine(rig.rt.get(), spec);
  engine.Arm();
  rig.rt->RunFor(horizon + Sec(5));
  return rig.Finish(spec.name(), engine);
}

/**
 * A node serving a heavy (llama2-7b) and a light (resnet152) function
 * dies mid-burst: the displaced batch is heterogeneous, which is where
 * the joint best-fit-decreasing recovery earns its keep over the
 * greedy victim-order path (`recovery` selects the policy; the JSON
 * carries both runs so the TTR gap is diffable).
 */
ScenarioResult
RunNodeFailureBurst(bool quick, std::uint64_t seed,
                    const std::string& recovery,
                    const std::string& label)
{
  const int duration_s = quick ? 120 : 180;
  Rig rig(/*nodes=*/3, seed, "resnet152", /*provisioned=*/2, recovery);
  core::FunctionSpec heavy;
  heavy.model = "llama2-7b";
  heavy.type = TaskType::kInference;
  const FunctionId heavy_fn = rig.rt->Deploy(heavy);
  rig.rt->LaunchInference(heavy_fn, /*cold=*/false);
  workload::BurstySpec bursty;
  bursty.duration_s = duration_s;
  bursty.base_rps = 80.0;
  bursty.burst_scale = 1.6;
  bursty.burst_len_s = 40;
  bursty.burst_gap_s = 50;
  rig.rt->AttachArrivals(
      rig.fn,
      std::make_unique<workload::EnvelopeArrivals>(
          workload::BuildBurstyTrace(bursty), Rng(seed + 2)),
      Sec(duration_s));

  chaos::ScenarioSpec spec(label);
  spec.FailNode(Sec(60), 0).RecoverNode(Sec(quick ? 90 : 130), 0);
  chaos::ChaosEngine engine(rig.rt.get(), spec);
  engine.Arm();
  rig.rt->RunFor(Sec(duration_s + 5));
  return rig.Finish(spec.name(), engine);
}

/**
 * Degraded-health path end to end: partial SM loss on one GPU, a 2.5x
 * straggler on another, both healing later. Not disruptive (nothing is
 * displaced — the KLC/scaler signal absorbs it), so the interesting
 * outputs are SVR / completed, not TTR.
 */
ScenarioResult
RunDegradedStraggler(bool quick, std::uint64_t seed)
{
  const TimeUs horizon = Sec(quick ? 90 : 150);
  Rig rig(/*nodes=*/2, seed, "bert-base", /*provisioned=*/2);
  rig.rt->AttachArrivals(
      rig.fn,
      std::make_unique<workload::PoissonArrivals>(40.0, Rng(seed + 5)),
      horizon);

  chaos::ScenarioSpec spec("degraded_straggler");
  spec.DegradeGpu(Sec(20), 0, 0.5)
      .StraggleGpu(Sec(30), 1, 2.5)
      .RecoverGpu(Sec(quick ? 60 : 100), 0)
      .RecoverGpu(Sec(quick ? 70 : 110), 1);
  chaos::ChaosEngine engine(rig.rt.get(), spec);
  engine.Arm();
  rig.rt->RunFor(horizon + Sec(5));
  return rig.Finish(spec.name(), engine);
}

ScenarioResult
RunDrainMaintenance(bool quick, std::uint64_t seed)
{
  const TimeUs horizon = Sec(quick ? 90 : 150);
  Rig rig(/*nodes=*/2, seed, "roberta-large", /*provisioned=*/2);
  rig.rt->AttachArrivals(
      rig.fn,
      std::make_unique<workload::PoissonArrivals>(30.0, Rng(seed + 3)),
      horizon);

  chaos::ScenarioSpec spec("drain_maintenance");
  spec.DrainNode(Sec(40), 0).UndrainNode(Sec(quick ? 70 : 100), 0);
  chaos::ChaosEngine engine(rig.rt.get(), spec);
  engine.Arm();
  rig.rt->RunFor(horizon + Sec(5));
  return rig.Finish(spec.name(), engine);
}

ScenarioResult
RunColdstartInflationSurge(bool quick, std::uint64_t seed)
{
  const TimeUs horizon = Sec(quick ? 100 : 160);
  Rig rig(/*nodes=*/2, seed, "bert-base", /*provisioned=*/1);
  const double base_rps =
      rig.rt->function(rig.fn).spec.per_instance_rps * 0.8;
  rig.rt->AttachArrivals(
      rig.fn,
      std::make_unique<workload::PoissonArrivals>(base_rps,
                                                  Rng(seed + 4)),
      horizon);

  // The surge forces scale-out launches that pay 3x cold starts; a GPU
  // failure inside the window stacks a recovery launch on top.
  chaos::ScenarioSpec spec("coldstart_inflation_surge");
  spec.InflateColdStarts(Sec(20), 3.0, Sec(quick ? 60 : 100))
      .Surge(Sec(25), rig.fn, base_rps * 1.5, Sec(quick ? 40 : 70))
      .FailGpu(Sec(35), 0);
  chaos::ChaosEngine engine(rig.rt.get(), spec);
  engine.Arm();
  rig.rt->RunFor(horizon + Sec(5));
  return rig.Finish(spec.name(), engine);
}

void
WriteJson(std::FILE* out, const std::vector<ScenarioResult>& results,
          bool quick, std::uint64_t seed)
{
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"dilu-chaos-bench/1\",\n");
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"faults\": %d, \"disruptive\": %d, "
        "\"recovered\": %d, \"mean_ttr_s\": %.3f, \"max_ttr_s\": %.3f, "
        "\"completed\": %lld, \"dropped\": %lld, "
        "\"svr_percent\": %.3f, \"availability_percent\": %.3f, "
        "\"recovery_cold_starts\": %d}%s\n",
        r.name.c_str(), r.faults, r.disruptive, r.recovered, r.mean_ttr_s,
        r.max_ttr_s, static_cast<long long>(r.completed),
        static_cast<long long>(r.dropped), r.svr_percent,
        r.availability_percent, r.recovery_cold_starts,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int
main(int argc, char** argv)
{
  bool quick = false;
  std::uint64_t seed = 1;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr,
                                                      10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--seed N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<ScenarioResult> results;
  results.push_back(RunGpuFailureSteady(quick, seed));
  results.push_back(
      RunNodeFailureBurst(quick, seed, "joint", "node_failure_burst"));
  results.push_back(RunNodeFailureBurst(quick, seed, "greedy",
                                        "node_failure_burst_greedy"));
  results.push_back(RunDrainMaintenance(quick, seed));
  results.push_back(RunColdstartInflationSurge(quick, seed));
  results.push_back(RunDegradedStraggler(quick, seed));
  for (const ScenarioResult& r : results) {
    std::fprintf(stderr,
                 "%-28s faults=%d recovered=%d/%d ttr=%.1fs svr=%.2f%% "
                 "drops=%lld avail=%.2f%%\n",
                 r.name.c_str(), r.faults, r.recovered, r.disruptive,
                 r.mean_ttr_s, r.svr_percent,
                 static_cast<long long>(r.dropped),
                 r.availability_percent);
  }

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    WriteJson(f, results, quick, seed);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
  } else {
    WriteJson(stdout, results, quick, seed);
  }
  return 0;
}
