/**
 * @file
 * Fig 10 reproduction: p95 latency under Gamma-distributed arrivals as
 * the coefficient of variation grows, for (a) RoBERTa-large at RPS=64
 * collocated with BERT-base training and (b) GPT2-large at RPS=48
 * collocated with RoBERTa-large training.
 *
 * Expected shape: Exclusive and Dilu stay flat-ish; MPS-l and
 * especially MPS-r blow up as CV grows because static quotas cannot
 * absorb bursts (at CV=6 the paper reports 2.08x / 4.76x vs Dilu).
 */
#include <cstdio>

#include "bench_util.h"

int
main()
{
  using namespace dilu;
  const char* presets[] = {"exclusive", "dilu", "mps-r", "mps-l"};
  const double cvs[] = {0.001, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};

  struct Case {
    const char* inf;
    const char* train;
    double rps;
  };
  const Case cases[] = {
      {"roberta-large", "bert-base", 64.0},
      {"gpt2-large", "roberta-large", 48.0},
  };

  for (const Case& c : cases) {
    std::printf("=== Fig 10: %s inference (RPS=%.0f) + %s training ===\n",
                c.inf, c.rps, c.train);
    std::printf("%8s", "CV");
    for (const char* p : presets) std::printf(" %12s", p);
    std::printf("   (p95 ms)\n");
    for (double cv : cvs) {
      std::printf("%8.3f", cv);
      for (const char* p : presets) {
        bench::TiCase tc;
        tc.inference_model = c.inf;
        tc.training_model = c.train;
        tc.rps = c.rps;
        tc.cv = cv;
        tc.duration = Sec(60);
        // RPS 48-64 exceeds one instance's capacity for these models;
        // the paper serves them with the profiled instance count.
        const auto out = bench::RunTrainingInference(p, tc);
        std::printf(" %12.0f", out.inference.p95_ms);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
