/**
 * @file
 * Fig 18 reproduction: sensitivity analyses.
 *
 * (a) Oversubscription coefficient gamma (the max sum of limit quotas
 *     per GPU) swept over {1.0, 1.25, 1.5, 2.0, 2.5} on the 3,200-
 *     instance placement: fragments and GPU usage fall with gamma, with
 *     diminishing returns beyond 1.5 (the paper's default).
 * (b) RCKM MaxTokens swept over {250, 500, 1000, 2000, 4000} on a
 *     training+inference collocation: conservative settings throttle
 *     everyone, excessive settings cause interference (inference p95).
 */
#include <cstdio>

#include "bench_util.h"
#include "profiler/inference_profiler.h"
#include "profiler/training_profiler.h"
#include "scheduler/scheduler.h"

namespace {

using namespace dilu;

void SweepGamma()
{
  std::printf("=== Fig 18(a): oversubscription coefficient sweep "
              "(3200 instances, 4000 GPUs) ===\n");
  std::printf("%8s %12s %12s %12s\n", "gamma", "GPUs used", "SM frag",
              "mem frag");
  // Shared profiled quotas.
  profiler::InferenceProfiler iprof;
  profiler::TrainingProfiler tprof;
  struct Item {
    SmQuota quota;
    double mem;
    bool large;
    TaskType type;
  };
  std::vector<Item> stream;
  Rng rng(42);
  for (int i = 0; i < 3200; ++i) {
    Item it;
    const double roll = rng.Uniform();
    if (roll < 0.2) {
      const char* pool[] = {"bert-base", "roberta-large", "gpt2-large",
                            "vgg19", "resnet152"};
      const auto& m = models::GetModel(pool[rng.UniformInt(0, 4)]);
      it.quota = tprof.Profile(m).quota;
      it.mem = m.mem_gb_training;
      it.large = false;
      it.type = TaskType::kTraining;
    } else {
      const bool llm = roll < 0.4;
      const char* llm_pool[] = {"llama2-7b", "chatglm3-6b"};
      const char* pool[] = {"bert-base", "roberta-large", "gpt2-large",
                            "vgg19", "resnet152"};
      const auto& m = models::GetModel(
          llm ? llm_pool[rng.UniformInt(0, 1)]
              : pool[rng.UniformInt(0, 4)]);
      it.quota = iprof.Profile(m).quota;
      it.mem = m.mem_gb_inference;
      it.large = llm;
      it.type = TaskType::kInference;
    }
    stream.push_back(it);
  }

  for (double gamma : {1.0, 1.25, 1.5, 2.0, 2.5}) {
    scheduler::ClusterState state;
    for (int n = 0; n < 1000; ++n) {
      for (int g = 0; g < 4; ++g) state.AddGpu(n, 40.0);
    }
    scheduler::DiluSchedulerConfig cfg;
    cfg.gamma = gamma;
    scheduler::DiluScheduler sched(cfg);
    InstanceId id = 0;
    for (const Item& it : stream) {
      scheduler::PlacementRequest req;
      req.function = id % 200;
      req.type = it.type;
      req.quota = it.quota;
      req.mem_gb = it.mem;
      req.large_model = it.large;
      req.affinity = {req.function};
      const auto placement = sched.Place(req, state);
      if (placement.ok) {
        state.Commit(id, req.function,
                     {{placement.gpus[0], req.quota, req.mem_gb}});
      }
      ++id;
    }
    std::printf("%8.2f %12d %12.2f %12.2f\n", gamma,
                state.ActiveGpuCount(), state.SmFragmentation(),
                state.MemoryFragmentation());
  }
  std::printf("(diminishing returns beyond 1.5; excessive values "
              "degrade QoS per Fig 18(b))\n\n");
}

void SweepMaxTokens()
{
  std::printf("=== Fig 18(b): MaxTokens sweep (RoBERTa-large inference "
              "@40rps + BERT training, shared GPU) ===\n");
  std::printf("%10s %14s %14s %16s\n", "MaxTokens", "inf p50(ms)",
              "inf p95(ms)", "train tokens/s");
  for (double max_tokens : {250.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    core::SystemConfig cfg;  // dilu
    cfg.cluster.tokens.max_tokens = max_tokens;
    core::System system(cfg);
    core::FunctionSpec ts;
    ts.model = "bert-base";
    ts.type = TaskType::kTraining;
    ts.workers = 1;
    const FunctionId train = system.Deploy(ts);
    const FunctionId inf = system.DeployInference("roberta-large");
    system.StartTrainingOn(train, {0});
    system.ProvisionOn(inf, {0});
    system.DriveGamma(inf, 40.0, 3.0, Sec(60));
    system.RunFor(Sec(62));
    const auto rep = system.MakeInferenceReport(inf);
    std::printf("%10.0f %14.1f %14.1f %16.0f\n", max_tokens, rep.p50_ms,
                rep.p95_ms,
                system.runtime().TrainingThroughputUnits(train));
  }
  std::printf("(the device executes 1000 blocks per 5 ms period: "
              "<1000 throttles everyone, >1000 oversubscribes and "
              "inflates inference tails)\n");
}

}  // namespace

int
main()
{
  SweepGamma();
  SweepMaxTokens();
  return 0;
}
