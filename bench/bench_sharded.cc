/**
 * @file
 * Sharded-core scaling bench (BENCH_04.json, docs/PARALLELISM.md): one
 * churn/placement-heavy 50k-GPU serverless fleet — 6,250 nodes x 8
 * GPUs, 256 autoscaled inference functions under bursty arrivals,
 * ~1M requests — run through the sharded driver at shards=8 and
 * threads in {1, 2, 4, 8}. Reports wall clock per thread count and the
 * speedup over threads=1, and self-checks the determinism contract:
 * every thread count must serialize the byte-identical report (the
 * bench FAILS, exit 1, if any run diverges).
 *
 * Flags: --quick (a 1k-GPU miniature, CI smoke), --seed N (cluster
 * seed, echoed into the JSON), --out FILE.
 *
 * Wall clock covers Run() only — partitioned construction is the same
 * work at every thread count and is excluded, as in the other benches.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/utsname.h>
#endif

#include "bench_util.h"
#include "experiment/sharded_experiment.h"

namespace {

using namespace dilu;
// dilu-lint: allow(wall-clock the scaling bench measures real elapsed time by design)
using Clock = std::chrono::steady_clock;

/** The fleet under test; --quick shrinks every axis. */
struct Scenario {
  int nodes = 6250;
  int gpus_per_node = 8;
  int functions = 256;
  double rps = 40.0;        ///< per function, bursty envelope base
  int workload_s = 100;     ///< arrival window
  int run_s = 110;          ///< simulated horizon (drain included)
  int shards = 8;
};

Scenario
MakeScenario(bool quick)
{
  Scenario sc;
  if (quick) {
    sc.nodes = 128;  // 1,024 GPUs
    sc.functions = 32;
    sc.workload_s = 20;
    sc.run_s = 25;
  }
  return sc;
}

/**
 * The spec text for `sc`: autoscaled functions over rotating small
 * models, bursty arrivals (the scaler chases every burst, so the run
 * is dominated by placement/scale churn, not steady-state serving).
 */
std::string
MakeSpecText(const Scenario& sc)
{
  static const char* kModels[] = {"resnet152", "bert-base", "vgg19",
                                  "gpt2-large", "roberta-large"};
  std::string out;
  out += "experiment sharded_scaling\n";
  out += "cluster nodes=" + std::to_string(sc.nodes)
       + " gpus_per_node=" + std::to_string(sc.gpus_per_node)
       + " seed=1\n";
  for (int f = 0; f < sc.functions; ++f) {
    out += "deploy model=" + std::string(kModels[f % 5])
         + " provision=1 scaler=dilu-lazy\n";
  }
  for (int f = 0; f < sc.functions; ++f) {
    // Staggered burst phases so the fleet always has some functions
    // scaling up while others idle down — sustained churn.
    out += "workload fn=" + std::to_string(f) + " bursty rps="
         + std::to_string(static_cast<int>(sc.rps)) + " scale=1.6 len="
         + std::to_string(8 + f % 7) + "s gap="
         + std::to_string(12 + f % 11) + "s for "
         + std::to_string(sc.workload_s) + "s\n";
  }
  out += "run for " + std::to_string(sc.run_s) + "s\n";
  return out;
}

struct Row {
  int threads = 0;
  double wall_ms = 0.0;
  double speedup = 0.0;
  std::int64_t requests = 0;
};

/** One timed Run() at `threads`; fills wall clock and the report. */
Row
RunOnce(const Scenario& sc, const dilu::bench::CliOptions& opts,
        int threads, std::string* json)
{
  experiment::ExperimentSpec spec;
  std::string error;
  const std::string text = MakeSpecText(sc);
  if (!experiment::ExperimentSpec::Parse(text, &spec, &error)) {
    std::fprintf(stderr, "internal spec error: %s\n", error.c_str());
    std::exit(2);
  }
  experiment::RunOptions ropts;
  ropts.seed = opts.seed;
  experiment::ShardOptions sh;
  sh.shards = sc.shards;
  sh.threads = threads;
  experiment::ShardedExperiment exp(std::move(spec), ropts, sh);

  const auto start = Clock::now();
  const experiment::ExperimentResult result = exp.Run();
  Row row;
  row.threads = threads;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  for (const experiment::FunctionResult& f : result.functions) {
    row.requests += f.completed + f.dropped;
  }
  *json = result.ToJson();
  std::fprintf(stderr, "threads=%d  %10.1f ms  (%lld requests)\n",
               threads, row.wall_ms,
               static_cast<long long>(row.requests));
  return row;
}

void
WriteJson(std::FILE* f, const Scenario& sc,
          const dilu::bench::CliOptions& opts,
          const std::vector<Row>& rows, bool deterministic)
{
  std::string machine = "unknown";
#ifndef _WIN32
  utsname u{};
  if (uname(&u) == 0) {
    machine = std::string(u.sysname) + " " + u.release + " " + u.machine;
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"dilu-sharded-bench/1\",\n");
  std::fprintf(f, "  \"machine\": \"%s\",\n", machine.c_str());
  // speedup_vs_1 is only meaningful when the host grants at least as
  // many hardware threads as the run uses; on a 1-core host the curve
  // is flat by construction and the byte-identity self-check is the
  // payload (see PERFORMANCE.md).
  std::fprintf(f, "  \"hw_threads\": %u,\n", hw);
  std::fprintf(f, "  \"scenario\": {\n");
  std::fprintf(f, "    \"gpus\": %d,\n", sc.nodes * sc.gpus_per_node);
  std::fprintf(f, "    \"nodes\": %d,\n", sc.nodes);
  std::fprintf(f, "    \"functions\": %d,\n", sc.functions);
  std::fprintf(f, "    \"shards\": %d,\n", sc.shards);
  std::fprintf(f, "    \"simulated_s\": %d,\n", sc.run_s);
  std::fprintf(f, "    \"seed\": %llu,\n",
               static_cast<unsigned long long>(opts.seed));
  std::fprintf(f, "    \"quick\": %s\n", opts.quick ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"deterministic_across_threads\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"wall_ms\": %.1f, "
                 "\"speedup_vs_1\": %.2f, \"requests\": %lld}%s\n",
                 r.threads, r.wall_ms, r.speedup,
                 static_cast<long long>(r.requests),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
}

}  // namespace

int
main(int argc, char** argv)
{
  dilu::bench::CliOptions opts;
  if (!dilu::bench::ParseCli(argc, argv, &opts, /*default_seed=*/1)) {
    return 1;
  }
  const Scenario sc = MakeScenario(opts.quick);
  std::fprintf(stderr,
               "sharded scaling bench: %d GPUs, %d functions, "
               "shards=%d, %ds simulated\n",
               sc.nodes * sc.gpus_per_node, sc.functions, sc.shards,
               sc.run_s);

  std::vector<Row> rows;
  std::string reference;
  bool deterministic = true;
  for (const int threads : {1, 2, 4, 8}) {
    std::string json;
    Row row = RunOnce(sc, opts, threads, &json);
    if (rows.empty()) {
      reference = json;
    } else if (json != reference) {
      deterministic = false;
      std::fprintf(stderr,
                   "FAIL: threads=%d report diverges from threads=1\n",
                   threads);
    }
    row.speedup = rows.empty() ? 1.0 : rows.front().wall_ms / row.wall_ms;
    rows.push_back(row);
  }

  const int rc = dilu::bench::EmitReport(opts, [&](std::FILE* f) {
    WriteJson(f, sc, opts, rows, deterministic);
  });
  if (!deterministic) {
    std::fprintf(stderr,
                 "determinism self-check FAILED: see diverging runs\n");
    return 1;
  }
  return rc;
}
