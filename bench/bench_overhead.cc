/**
 * @file
 * Fig 11 reproduction: vertical scaling overhead.
 *
 * (a) Training throughput with and without Dilu's RCKM managing the
 *     GPU (solo instance, so the token control path is exercised but
 *     no contention exists) — the paper reports <1% loss.
 * (b) Inference latency with 1/2/4/8 RCKM-managed collocated instances
 *     at light load, normalized to the unmanaged single-instance run.
 */
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace dilu;

double TrainingTput(const std::string& preset, const char* model)
{
  core::SystemConfig cfg = core::SystemConfig::Preset(preset);
  core::System system(cfg);
  const FunctionId t = system.DeployTraining(model, 1);
  system.StartTrainingOn(t, {0});
  system.RunFor(Sec(60));
  return system.runtime().TrainingThroughputUnits(t);
}

double InferenceP50(const std::string& preset, int collocated)
{
  core::SystemConfig cfg = core::SystemConfig::Preset(preset);
  core::System system(cfg);
  std::vector<FunctionId> fns;
  for (int i = 0; i < collocated; ++i) {
    core::FunctionSpec s;
    s.model = "bert-base";
    s.type = TaskType::kInference;
    // Keep every instance under its request so no real contention:
    // what remains is pure management overhead.
    const FunctionId fn = system.Deploy(s);
    system.ProvisionOn(fn, {0});
    system.DrivePoisson(fn, 3.0, Sec(60));
    fns.push_back(fn);
  }
  system.RunFor(Sec(62));
  return system.MakeInferenceReport(fns[0]).p50_ms;
}

}  // namespace

int
main()
{
  std::printf("=== Fig 11(a): training overhead (normalized throughput "
              "with Dilu vs without) ===\n");
  for (const char* m : {"bert-base", "roberta-large", "gpt2-large",
                        "llama2-7b"}) {
    const double without = TrainingTput("exclusive", m);
    const double with_dilu = TrainingTput("dilu", m);
    std::printf("  %-14s %.3f\n", m, with_dilu / without);
  }

  std::printf("\n=== Fig 11(b): inference overhead (normalized p50 vs "
              "unmanaged) ===\n");
  const double base = InferenceP50("exclusive", 1);
  for (int n : {1, 2, 4, 8}) {
    const double with_dilu = InferenceP50("dilu", n);
    std::printf("  %d collocated instance(s): %.3f\n", n,
                with_dilu / base);
  }
  std::printf("\n(paper: both overheads < 1%%; in the simulator the "
              "token path is zero-cost by construction, so ~1.00 here "
              "verifies the control logic itself never throttles "
              "uncontended instances)\n");
  return 0;
}
