/**
 * @file
 * Fig 4 reproduction: throughput efficacy (TE) surfaces over
 * <IBS, SMR> for ResNet152, RoBERTa-large, GPT2-large and LLaMA2-7B,
 * with the Hybrid Growth Search path and the chosen star.
 *
 * Legend (matching the figure): '*' star, '+' SLO-feasible point,
 * 'x' SLO violation, '@' point on the HGS forward path.
 */
#include <cstdio>
#include <cstring>

#include "models/cost_model.h"
#include "profiler/inference_profiler.h"

int
main()
{
  using namespace dilu;
  profiler::InferenceProfiler prof;
  for (const char* name : {"resnet152", "roberta-large", "gpt2-large",
                           "llama2-7b"}) {
    const auto& m = models::GetModel(name);
    const auto p = prof.Profile(m);
    std::printf("=== Fig 4: %s (SLO %.0f ms, exec budget %.0f ms) ===\n",
                name, m.slo_ms, m.slo_ms / 2);
    std::printf("%6s", "IBS\\SMR");
    for (int s = 1; s <= 10; ++s) std::printf("   %3d%%  ", s * 10);
    std::printf("\n");
    for (int b = 1; b <= m.max_batch; b *= 2) {
      std::printf("%6d", b);
      for (int s = 1; s <= 10; ++s) {
        const double smr = s * 0.1;
        const double te = models::ThroughputEfficacy(m, b, smr);
        const bool ok = models::MeetsSlo(m, b, smr);
        char mark = ok ? '+' : 'x';
        for (const auto& t : p.path) {
          if (t.ibs == b && std::abs(t.smr - smr) < 0.01) mark = '@';
        }
        if (p.ibs == b && std::abs(p.quota.request - smr) < 0.01) {
          mark = '*';
        }
        std::printf(" %6.0f %c", te, mark);
      }
      std::printf("\n");
    }
    std::printf("star <IBS=%d, SMR=%.0f%%> TE=%.0f (request quota; "
                "limit = %.0f%%), %d trials\n\n", p.ibs,
                p.quota.request * 100, p.te, p.quota.limit * 100,
                p.trials);
  }
  return 0;
}
