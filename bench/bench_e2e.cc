/**
 * @file
 * Fig 15 + Fig 16 reproduction: end-to-end cluster experiment and
 * ablations.
 *
 * Workload (Section 5.4): four training functions submitted at
 * staggered times (two 2-worker, two 4-worker) plus three inference
 * functions driven by bursty, periodic and bursty workloads with
 * autoscaling. Systems: Exclusive, INFless+-l, INFless+-r, Dilu and the
 * ablations -RC (no resource complementarity), -WA (no workload
 * affinity), -VS (no vertical scaling). Each system run is one
 * declarative ExperimentSpec executed by the Experiment driver — the
 * seven runs differ only in the spec's cluster line.
 *
 * Fig 15: inference SVR, normalized training JCT, max occupied GPUs.
 * Fig 16: aggregate throughput per occupied GPU, normalized to
 * Exclusive.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "experiment/experiment.h"

namespace {

using namespace dilu;
using experiment::ArrivalKind;
using experiment::ExperimentSpec;

constexpr TimeUs kDuration = Sec(600);

struct E2eResult {
  double svr_mean = 0.0;
  double svr_max = 0.0;
  double jct_mean_s = 0.0;     ///< mean JCT over training functions
  int max_gpus = 0;
  double avg_gpus = 0.0;       ///< time-averaged occupied GPUs
  double inf_rps_served = 0.0; ///< completed requests / duration
  double train_units = 0.0;    ///< aggregate training units/s
};

ExperimentSpec
SpecFor(const std::string& name)
{
  ExperimentSpec s("e2e_" + name);
  s.cluster().nodes = 5;  // the paper's 5 x 4-GPU testbed
  if (name == "exclusive") {
    s.cluster().preset = "exclusive";
  } else if (name == "infless+-l") {
    s.cluster().preset = "infless-l";
  } else if (name == "infless+-r") {
    s.cluster().preset = "infless-r";
  } else {
    if (name == "-RC") s.cluster().resource_complementarity = false;
    if (name == "-WA") s.cluster().workload_affinity = false;
    if (name == "-VS") s.cluster().sharing = "static";
  }
  const std::string scaler =
      (name == "infless+-l" || name == "infless+-r") ? "keep-alive"
                                                     : "dilu-lazy";

  // Training functions: two 2-worker, two 4-worker, staggered.
  s.AddTraining("bert-base", 2, 700).start = Sec(0);
  s.AddTraining("roberta-large", 2, 450).start = Sec(30);
  s.AddTraining("gpt2-large", 4, 300).start = Sec(60);
  s.AddTraining("vgg19", 4, 400).start = Sec(90);

  // Inference functions with distinct workload archetypes, sized so
  // demand peaks near (not far beyond) one instance's capacity; bursts
  // beyond it exercise the co-scaling path.
  struct InfDef {
    const char* model;
    ArrivalKind kind;
    double base_rps;
  };
  const InfDef inf_defs[] = {
      {"resnet152", ArrivalKind::kBursty, 60.0},
      {"roberta-large", ArrivalKind::kPeriodic, 40.0},
      {"gpt2-large", ArrivalKind::kBursty, 10.0},
  };
  int fn = 4;
  std::uint64_t seed = 3;
  for (const InfDef& d : inf_defs) {
    auto& dep = s.AddInference(d.model);
    dep.provision = 1;
    dep.scaler = scaler;
    s.AddTrace(fn++, d.kind, d.base_rps, kDuration).seed = seed++;
  }
  s.RunFor(kDuration + Sec(30));
  return s;
}

E2eResult
RunSystem(const std::string& name)
{
  experiment::Experiment exp(SpecFor(name));
  const experiment::ExperimentResult res = exp.Run();

  E2eResult r;
  Accumulator svr;
  Accumulator jct;
  long long completed = 0;
  for (const experiment::FunctionResult& f : res.functions) {
    if (f.type == TaskType::kTraining) {
      if (f.jct_s > 0) jct.Add(f.jct_s);
      r.train_units += f.throughput_units;
    } else {
      svr.Add(f.svr_percent);
      completed += f.completed;
    }
  }
  r.svr_mean = svr.mean();
  r.svr_max = svr.max();
  r.jct_mean_s = jct.mean();
  r.max_gpus = res.max_gpus;
  r.avg_gpus = res.avg_gpus;
  r.inf_rps_served = static_cast<double>(completed) / ToSec(kDuration);
  return r;
}

}  // namespace

int
main()
{
  const char* systems[] = {"exclusive", "infless+-l", "infless+-r",
                           "dilu", "-RC", "-WA", "-VS"};
  std::printf("=== Fig 15: end-to-end performance and ablations ===\n");
  std::printf("%-12s %9s %9s %12s %9s %9s\n", "system", "SVR(%)",
              "maxSVR(%)", "JCT norm", "max GPUs", "avg GPUs");
  E2eResult results[7];
  double excl_jct = 0.0;
  for (int i = 0; i < 7; ++i) {
    results[i] = RunSystem(systems[i]);
    if (i == 0) excl_jct = results[i].jct_mean_s;
    std::printf("%-12s %9.2f %9.2f %12.2f %9d %9.1f\n", systems[i],
                results[i].svr_mean, results[i].svr_max,
                results[i].jct_mean_s / std::max(1.0, excl_jct),
                results[i].max_gpus, results[i].avg_gpus);
  }

  std::printf("\n=== Fig 16: aggregate throughput per occupied GPU "
              "(normalized to Exclusive) ===\n");
  std::printf("%-12s %16s %16s\n", "system", "inference", "training");
  // Normalize by time-averaged occupancy: exclusive holds whole GPUs
  // through keep-alive/idle periods, which is the cost the aggregate
  // throughput metric (Fig 16) charges for.
  const double excl_inf =
      results[0].inf_rps_served / std::max(1.0, results[0].avg_gpus);
  const double excl_train =
      results[0].train_units / std::max(1.0, results[0].avg_gpus);
  for (int i = 0; i < 7; ++i) {
    const double inf =
        results[i].inf_rps_served / std::max(1.0, results[i].avg_gpus);
    const double train =
        results[i].train_units / std::max(1.0, results[i].avg_gpus);
    std::printf("%-12s %16.2f %16.2f\n", systems[i], inf / excl_inf,
                train / excl_train);
  }
  std::printf("\n(paper: Dilu reaches 3.8x/2.8x/2.3x Exclusive/"
              "INFless+-l/INFless+-r aggregate inference throughput and "
              "2.5x/2.1x/1.2x for training; -VS raises mean/max "
              "inference SVR by 158%%/203%%)\n");
  return 0;
}
