/**
 * @file
 * Fig 15 + Fig 16 reproduction: end-to-end cluster experiment and
 * ablations.
 *
 * Workload (Section 5.4): four training functions submitted at
 * staggered times (two 2-worker, two 4-worker) plus three inference
 * functions driven by bursty, periodic and Poisson workloads with
 * autoscaling. Systems: Exclusive, INFless+-l, INFless+-r, Dilu and the
 * ablations -RC (no resource complementarity), -WA (no workload
 * affinity), -VS (no vertical scaling).
 *
 * Fig 15: inference SVR, normalized training JCT, max occupied GPUs.
 * Fig 16: aggregate throughput per occupied GPU, normalized to
 * Exclusive.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace dilu;

struct E2eResult {
  double svr_mean = 0.0;
  double svr_max = 0.0;
  double jct_mean_s = 0.0;     ///< mean JCT over training functions
  int max_gpus = 0;
  double avg_gpus = 0.0;       ///< time-averaged occupied GPUs
  double inf_rps_served = 0.0; ///< completed requests / duration
  double train_units = 0.0;    ///< aggregate training units/s
};

core::SystemConfig ConfigFor(const std::string& name)
{
  if (name == "exclusive") return core::SystemConfig::Preset("exclusive");
  if (name == "infless+-l") return core::SystemConfig::Preset("infless-l");
  if (name == "infless+-r") return core::SystemConfig::Preset("infless-r");
  core::SystemConfig cfg = core::SystemConfig::Preset("dilu");
  if (name == "-RC") cfg.cluster.sched.resource_complementarity = false;
  if (name == "-WA") cfg.cluster.sched.workload_affinity = false;
  if (name == "-VS") cfg.cluster.sharing = "static";
  return cfg;
}

E2eResult RunSystem(const std::string& name)
{
  core::SystemConfig cfg = ConfigFor(name);
  cfg.cluster.nodes = 5;  // the paper's 5 x 4-GPU testbed
  core::System system(cfg);
  const std::string policy =
      (name == "infless+-l" || name == "infless+-r") ? "keep-alive"
                                                     : "dilu-lazy";

  // Training functions: two 2-worker, two 4-worker, staggered.
  struct TrainDef {
    const char* model;
    int workers;
    std::int64_t iters;
    TimeUs submit;
  };
  const TrainDef train_defs[] = {
      {"bert-base", 2, 700, Sec(0)},
      {"roberta-large", 2, 450, Sec(30)},
      {"gpt2-large", 4, 300, Sec(60)},
      {"vgg19", 4, 400, Sec(90)},
  };
  std::vector<FunctionId> train_fns;
  for (const TrainDef& d : train_defs) {
    const FunctionId fn =
        system.DeployTraining(d.model, d.workers, d.iters);
    train_fns.push_back(fn);
    system.runtime().simulation().queue().ScheduleAt(
        d.submit, [&system, fn] { system.StartTraining(fn, true); });
  }

  // Inference functions with distinct workload archetypes.
  const TimeUs duration = Sec(600);
  struct InfDef {
    const char* model;
    workload::TraceKind kind;
    double base_rps;
  };
  // Workloads sized so demand peaks near (not far beyond) one
  // instance's capacity; bursts beyond it exercise the co-scaling path.
  const InfDef inf_defs[] = {
      {"resnet152", workload::TraceKind::kBursty, 60.0},
      {"roberta-large", workload::TraceKind::kPeriodic, 40.0},
      {"gpt2-large", workload::TraceKind::kBursty, 10.0},
  };
  std::vector<FunctionId> inf_fns;
  int seed = 3;
  for (const InfDef& d : inf_defs) {
    const FunctionId fn = system.DeployInference(d.model);
    system.Provision(fn, 1);
    system.EnableCoScaling(fn, policy);
    workload::TraceSpec spec;
    spec.duration_s = 600;
    spec.base_rps = d.base_rps;
    spec.seed = static_cast<std::uint64_t>(seed++);
    system.DriveEnvelope(fn, workload::BuildTrace(d.kind, spec),
                         duration);
    inf_fns.push_back(fn);
  }

  system.RunFor(duration + Sec(30));

  E2eResult r;
  Accumulator svr;
  long long completed = 0;
  for (FunctionId fn : inf_fns) {
    const auto rep = system.MakeInferenceReport(fn);
    svr.Add(rep.svr_percent);
    completed += rep.completed;
  }
  r.svr_mean = svr.mean();
  r.svr_max = svr.max();
  Accumulator jct;
  for (FunctionId fn : train_fns) {
    const auto rep = system.MakeTrainingReport(fn);
    if (rep.jct_s > 0) jct.Add(rep.jct_s);
    r.train_units += rep.throughput_units;
  }
  r.jct_mean_s = jct.mean();
  r.max_gpus = system.runtime().max_active_gpus();
  const auto& samples = system.runtime().metrics().samples();
  for (const auto& smp : samples) r.avg_gpus += smp.active_gpus;
  r.avg_gpus /= std::max<std::size_t>(1, samples.size());
  r.inf_rps_served = static_cast<double>(completed) / ToSec(duration);
  return r;
}

}  // namespace

int
main()
{
  const char* systems[] = {"exclusive", "infless+-l", "infless+-r",
                           "dilu", "-RC", "-WA", "-VS"};
  std::printf("=== Fig 15: end-to-end performance and ablations ===\n");
  std::printf("%-12s %9s %9s %12s %9s %9s\n", "system", "SVR(%)",
              "maxSVR(%)", "JCT norm", "max GPUs", "avg GPUs");
  E2eResult results[7];
  double excl_jct = 0.0;
  for (int i = 0; i < 7; ++i) {
    results[i] = RunSystem(systems[i]);
    if (i == 0) excl_jct = results[i].jct_mean_s;
    std::printf("%-12s %9.2f %9.2f %12.2f %9d %9.1f\n", systems[i],
                results[i].svr_mean, results[i].svr_max,
                results[i].jct_mean_s / std::max(1.0, excl_jct),
                results[i].max_gpus, results[i].avg_gpus);
  }

  std::printf("\n=== Fig 16: aggregate throughput per occupied GPU "
              "(normalized to Exclusive) ===\n");
  std::printf("%-12s %16s %16s\n", "system", "inference", "training");
  // Normalize by time-averaged occupancy: exclusive holds whole GPUs
  // through keep-alive/idle periods, which is the cost the aggregate
  // throughput metric (Fig 16) charges for.
  const double excl_inf =
      results[0].inf_rps_served / std::max(1.0, results[0].avg_gpus);
  const double excl_train =
      results[0].train_units / std::max(1.0, results[0].avg_gpus);
  for (int i = 0; i < 7; ++i) {
    const double inf =
        results[i].inf_rps_served / std::max(1.0, results[i].avg_gpus);
    const double train =
        results[i].train_units / std::max(1.0, results[i].avg_gpus);
    std::printf("%-12s %16.2f %16.2f\n", systems[i], inf / excl_inf,
                train / excl_train);
  }
  std::printf("\n(paper: Dilu reaches 3.8x/2.8x/2.3x Exclusive/"
              "INFless+-l/INFless+-r aggregate inference throughput and "
              "2.5x/2.1x/1.2x for training; -VS raises mean/max "
              "inference SVR by 158%%/203%%)\n");
  return 0;
}
