/**
 * @file
 * Fig 13 + Fig 14 reproduction: kernel issuing traces.
 *
 * Case 1 (Fig 13a): low inference workload (~10 rps RoBERTa-large)
 * collocated with BERT training — Dilu keeps the inference kernel ratio
 * low so training absorbs the idle SMs; MPS-r's static reservation
 * leaves them stranded.
 * Case 2 (Fig 13b): fluctuating Gamma(CV=5) workload — Dilu issues more
 * kernels to inference exactly when bursts arrive.
 * Fig 14: cumulative executed kernel blocks — Dilu's total tracks the
 * highest GPU utilization.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "runtime/inference_instance.h"

namespace {

using namespace dilu;

struct TraceRow {
  double t = 0.0;
  double inf_ratio = 0.0;   ///< inference blocks / all blocks (interval)
  double total_blocks = 0.0;  ///< cumulative blocks executed on the GPU
};

std::vector<TraceRow> RunCase(const std::string& preset, double rps,
                              double cv, int seconds)
{
  core::SystemConfig cfg = core::SystemConfig::Preset(preset);
  core::System system(cfg);
  core::FunctionSpec ts;
  ts.model = "bert-base";
  ts.type = TaskType::kTraining;
  ts.workers = 1;
  const FunctionId train = system.Deploy(ts);
  const FunctionId inf = system.DeployInference("roberta-large");
  system.StartTrainingOn(train, {0});
  system.ProvisionOn(inf, {0});
  if (cv < 0.0) {
    system.DrivePoisson(inf, rps, Sec(seconds));
  } else {
    system.DriveGamma(inf, rps, cv, Sec(seconds));
  }

  auto& rt = system.runtime();
  auto* inf_inst = rt.gateway().instances(inf)[0];
  std::vector<TraceRow> rows;
  double last_inf = 0.0;
  double last_total = 0.0;
  rt.simulation().SchedulePeriodic(Sec(5), Sec(5), [&] {
    const double inf_total = inf_inst->stats().blocks_launched_total;
    const double gpu_total = rt.gpus().gpu(0).UtilizationIntegral(rt.now())
        / static_cast<double>(kTokenPeriodUs) * models::kBlocksPerQuantum;
    TraceRow row;
    row.t = ToSec(rt.now());
    const double inf_delta = inf_total - last_inf;
    const double total_delta = gpu_total - last_total;
    row.inf_ratio = total_delta > 0 ? inf_delta / total_delta : 0.0;
    row.total_blocks = gpu_total;
    last_inf = inf_total;
    last_total = gpu_total;
    rows.push_back(row);
  });
  system.RunFor(Sec(seconds + 2));
  return rows;
}

void PrintCase(const char* title, double rps, double cv, int seconds)
{
  std::printf("%s\n", title);
  const auto dilu = RunCase("dilu", rps, cv, seconds);
  const auto mps_r = RunCase("mps-r", rps, cv, seconds);
  std::printf("%8s %18s %18s %18s %18s\n", "t(s)", "dilu inf-ratio",
              "mps-r inf-ratio", "dilu cum-blk", "mps-r cum-blk");
  for (std::size_t i = 0; i < dilu.size() && i < mps_r.size(); ++i) {
    std::printf("%8.0f %18.3f %18.3f %18.0f %18.0f\n", dilu[i].t,
                dilu[i].inf_ratio, mps_r[i].inf_ratio,
                dilu[i].total_blocks, mps_r[i].total_blocks);
  }
  std::printf("\n");
}

}  // namespace

int
main()
{
  std::printf("=== Fig 13/14: kernel issuing traces (inference share of "
              "executed kernel blocks per 5 s window; cumulative blocks) "
              "===\n\n");
  PrintCase("Case 1: low workload (Poisson 10 rps)", 10.0, -1.0, 50);
  PrintCase("Case 2: fluctuating workload (Gamma CV=5, 40 rps)", 40.0,
            5.0, 50);
  std::printf("(paper: under low load Dilu's inference kernel ratio "
              "stays low, freeing SMs for training; under bursts Dilu "
              "issues more tokens than MPS-r exactly when needed; Dilu's "
              "cumulative kernel count — Fig 14 — tracks the highest GPU "
              "utilization)\n");
  return 0;
}
