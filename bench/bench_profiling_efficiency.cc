/**
 * @file
 * Table 2 reproduction: inference profiling iteration counts for
 * models (a) ResNet152, (b) RoBERTa-large, (c) GPT2-large,
 * (d) LLaMA2-7B, comparing Traversal, INFless (prediction), GPUlet and
 * Dilu's Hybrid Growth Search.
 */
#include <cstdio>

#include "profiler/baseline_profilers.h"
#include "profiler/inference_profiler.h"

int
main()
{
  using namespace dilu;
  const char* names[] = {"resnet152", "roberta-large", "gpt2-large",
                         "llama2-7b"};
  std::printf("Table 2: inference profiling iterations (approx 30 s per "
              "trial)\n");
  std::printf("%-12s %6s %6s %6s %6s  method\n", "Baseline", "a", "b",
              "c", "d");

  int trav[4], infl[4], gpl[4], dilu_n[4];
  profiler::InferenceProfiler dilu_prof;
  for (int i = 0; i < 4; ++i) {
    const auto& m = models::GetModel(names[i]);
    trav[i] = profiler::ProfileTraversal(m).trials;
    infl[i] = profiler::ProfileInflessPredictive(m, 0.15, Rng(7)).trials;
    gpl[i] = profiler::ProfileGpulet(m).trials;
    dilu_n[i] = dilu_prof.Profile(m).trials;
  }
  std::printf("%-12s %6d %6d %6d %6d  pre-running\n", "Traversal",
              trav[0], trav[1], trav[2], trav[3]);
  std::printf("%-12s %6d %6d %6d %6d  prediction\n", "INFless", infl[0],
              infl[1], infl[2], infl[3]);
  std::printf("%-12s %6d %6d %6d %6d  pre-running\n", "GPUlet", gpl[0],
              gpl[1], gpl[2], gpl[3]);
  std::printf("%-12s %6d %6d %6d %6d  pre-running\n", "Dilu", dilu_n[0],
              dilu_n[1], dilu_n[2], dilu_n[3]);

  std::printf("\nchosen configurations (Dilu):\n");
  for (const char* n : names) {
    const auto p = dilu_prof.Profile(models::GetModel(n));
    std::printf("  %-14s star <IBS=%d, SMR=%.0f%%> TE=%.0f req/s per "
                "GPU\n", n, p.ibs, p.quota.request * 100, p.te);
  }
  return 0;
}
