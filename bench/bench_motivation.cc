/**
 * @file
 * Fig 2 reproduction: the motivating observations.
 *
 * (a/b) Fragmentation sources — static over-provisioning (RoBERTa at a
 *       fixed 30% SM quota under light load), DDP communication idling
 *       (4-worker GPT2-large), keep-alive waste (sporadic trace).
 * (c/d) Toy co-scaling experiment — Exclusive on 4 GPUs (3 training +
 *       1 inference) versus Collocation on 3 GPUs (each GPU hosts one
 *       training worker + one inference instance, requests balanced
 *       over the 3 inference workers), sweeping RPS.
 */
#include <cstdio>

#include "bench_util.h"
#include "models/cost_model.h"

namespace {

using namespace dilu;

void ObservationOverprovisioning()
{
  std::printf("Fig 2(a): static 30%% SM quota for RoBERTa-large under "
              "light load (5 rps)\n");
  core::SystemConfig cfg = core::SystemConfig::Preset("mps-l");
  core::System system(cfg);
  core::FunctionSpec spec;
  spec.model = "roberta-large";
  spec.type = TaskType::kInference;
  spec.ibs = 4;
  spec.quota = {0.3, 0.3};  // INFless-style constant 30% allocation
  const FunctionId fn = system.Deploy(spec);
  system.ProvisionOn(fn, {0});
  system.DrivePoisson(fn, 5.0, Sec(60));
  system.RunFor(Sec(62));
  const auto& samples = system.runtime().metrics().samples();
  double util = 0.0;
  for (const auto& s : samples) util += s.avg_utilization;
  util /= samples.empty() ? 1 : samples.size();
  std::printf("  allocated SM quota: 30%%, average SM actually used: "
              "%.1f%% -> %.1f%% of the quota is an internal fragment\n\n",
              util * 100, (0.3 - util) / 0.3 * 100);
}

void ObservationCommIdling()
{
  std::printf("Fig 2(a/b): GPU idling of distributed training\n");
  for (const char* model : {"gpt2-large", "llama2-7b"}) {
    const auto& m = models::GetModel(model);
    const double comm = static_cast<double>(models::TrainingCommPhase(m));
    const double comp =
        static_cast<double>(models::TrainingComputePhase(m, 1.0));
    std::printf("  %-12s %d-worker: %.0f%% of each iteration is "
                "comm/bubble (GPU idle)\n", model,
                std::string(model) == "gpt2-large" ? 4 : 4,
                comm / (comm + comp) * 100);
  }
  std::printf("\n");
}

void ObservationKeepAlive()
{
  std::printf("Fig 2(a): keep-alive waste under a sporadic trace\n");
  workload::SporadicSpec spec;
  spec.duration_s = 300;
  spec.base_rps = 2.0;
  spec.active_fraction = 0.12;
  const auto env = workload::BuildSporadicTrace(spec);
  int active = 0;
  for (double v : env) {
    if (v > 0.0) ++active;
  }
  std::printf("  trace active %d / %d seconds; a keep-alive instance is "
              "provisioned 100%% of the time -> %.0f%% of its GPU "
              "reservation is waste\n\n", active, spec.duration_s,
              (1.0 - static_cast<double>(active) / spec.duration_s)
                  * 100);
}

void ToyCoScaling()
{
  std::printf("Fig 2(c/d): toy co-scaling, Exclusive (4 GPUs) vs "
              "Collocation (3 GPUs)\n");
  std::printf("%8s | %14s %14s | %14s %14s\n", "RPS", "excl p95(ms)",
              "coll p95(ms)", "excl train", "coll train");
  for (double rps : {32.0, 64.0, 128.0, 256.0}) {
    // Exclusive: 3 GPUs train BERT, 1 GPU serves RoBERTa.
    core::System excl(core::SystemConfig::Preset("exclusive"));
    {
      const FunctionId t = excl.DeployTraining("bert-base", 3);
      excl.StartTrainingOn(t, {0, 1, 2});
      const FunctionId i = excl.DeployInference("roberta-large");
      excl.ProvisionOn(i, {3});
      excl.DrivePoisson(i, rps, Sec(60));
      excl.RunFor(Sec(62));
      const auto ri = excl.MakeInferenceReport(i);
      const double tt = excl.runtime().TrainingThroughputUnits(t);

      // Collocation: 3 GPUs, each hosts a training worker + an
      // inference instance; requests balance across the 3 instances.
      core::System coll;  // dilu preset
      const FunctionId ct = coll.DeployTraining("bert-base", 3);
      coll.StartTrainingOn(ct, {0, 1, 2});
      const FunctionId ci = coll.DeployInference("roberta-large");
      coll.ProvisionOn(ci, {0});
      coll.ProvisionOn(ci, {1});
      coll.ProvisionOn(ci, {2});
      coll.DrivePoisson(ci, rps, Sec(60));
      coll.RunFor(Sec(62));
      const auto rc = coll.MakeInferenceReport(ci);
      const double tc = coll.runtime().TrainingThroughputUnits(ct);

      std::printf("%8.0f | %14.1f %14.1f | %14.0f %14.0f  (train "
                  "-%4.1f%%)\n", rps, ri.p95_ms, rc.p95_ms, tt, tc,
                  (1.0 - tc / std::max(1.0, tt)) * 100);
    }
  }
  std::printf("  (collocation saves 25%% of GPUs; paper: +46%% inference "
              "throughput, -5.2%% training at RPS=256)\n");
}

}  // namespace

int
main()
{
  std::printf("=== Fig 2: motivating observations ===\n\n");
  ObservationOverprovisioning();
  ObservationCommIdling();
  ObservationKeepAlive();
  ToyCoScaling();
  return 0;
}
