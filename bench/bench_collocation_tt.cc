/**
 * @file
 * Fig 9 reproduction: training-training collocation.
 *
 * Two training jobs share each GPU; the table reports per-job and
 * aggregate throughput normalized to the Exclusive layout (which burns
 * twice the GPUs). The paper's headline: Dilu reaches ~176% of
 * Exclusive's aggregate throughput on half the devices because comm
 * phases of one job overlap compute of the other.
 */
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace dilu;

struct TtOutcome {
  double tput_a = 0.0;
  double tput_b = 0.0;
};

TtOutcome RunPair(const std::string& preset, const char* model_a,
                  const char* model_b)
{
  core::SystemConfig cfg = core::SystemConfig::Preset(preset);
  cfg.cluster.nodes = 1;
  core::System system(cfg);
  // Job A is the "productive" job for priority arbiters (TGS).
  core::FunctionSpec sa;
  sa.model = model_a;
  sa.type = TaskType::kTraining;
  sa.workers = 1;
  sa.priority = 1;
  const FunctionId a = system.Deploy(sa);
  const FunctionId b = system.DeployTraining(model_b, 1);
  if (preset == "exclusive") {
    system.StartTrainingOn(a, {0});
    system.StartTrainingOn(b, {1});
  } else {
    system.StartTrainingOn(a, {0});
    system.StartTrainingOn(b, {0});
  }
  system.RunFor(Sec(90));
  TtOutcome out;
  out.tput_a = system.runtime().TrainingThroughputUnits(a);
  out.tput_b = system.runtime().TrainingThroughputUnits(b);
  return out;
}

}  // namespace

int
main()
{
  const char* pairs[][2] = {
      {"bert-base", "roberta-large"},
      {"vgg19", "resnet152"},
      {"roberta-large", "bert-base"},
      {"gpt2-large", "bert-base"},
  };
  const char* presets[] = {"exclusive", "dilu", "mps-l", "mps-r", "tgs"};

  std::printf("=== Fig 9: training-training collocation ===\n");
  std::printf("per-GPU aggregate throughput normalized to Exclusive "
              "(which uses 2 GPUs per pair; sharing presets use 1)\n\n");
  std::printf("%-24s", "pair");
  for (const char* p : presets) std::printf(" %10s", p);
  std::printf("\n");

  for (const auto& pair : pairs) {
    TtOutcome excl = RunPair("exclusive", pair[0], pair[1]);
    // Normalize each job by its exclusive throughput, then report the
    // aggregate relative performance per GPU (sharing uses half the
    // GPUs, so the per-GPU aggregate doubles when throughputs hold).
    std::printf("%-11s+%-12s", pair[0], pair[1]);
    for (const char* p : presets) {
      const TtOutcome out = RunPair(p, pair[0], pair[1]);
      const double rel_a = out.tput_a / std::max(1.0, excl.tput_a);
      const double rel_b = out.tput_b / std::max(1.0, excl.tput_b);
      const int gpus = std::string(p) == "exclusive" ? 2 : 1;
      const double per_gpu_aggregate = (rel_a + rel_b) / gpus * 2.0 / 2.0;
      // report aggregate normalized throughput x (2 / gpus): the
      // paper's "aggregate training throughput of Exclusive" metric.
      std::printf(" %10.2f", (rel_a + rel_b) / 2.0 * (2.0 / gpus));
      (void)per_gpu_aggregate;
    }
    std::printf("\n");
  }
  std::printf("\n(paper: Dilu ~1.76x Exclusive aggregate, 10-14%% over "
              "MPS-l and 3-14%% over MPS-r; TGS starves the low-priority "
              "job)\n");
  return 0;
}
