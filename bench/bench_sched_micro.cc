/**
 * @file
 * Section 5.3 micro-benchmarks (google-benchmark): the paper reports
 * scheduling 3,200 concurrent instances in 1.12 s and per-instance
 * vertical-scaling overhead below 1 ms. These benchmarks time our
 * Algorithm 1 implementation and the RCKM token path directly.
 */
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "models/cost_model.h"
#include "rckm/token_manager.h"
#include "scheduler/scheduler.h"
#include "sim/event_queue.h"

namespace {

using namespace dilu;

/** Place 3,200 instances on a 4,000-GPU cluster (Fig 17 scale). */
void BM_Schedule3200Instances(benchmark::State& state)
{
  Rng seed_rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    scheduler::ClusterState cs;
    for (int n = 0; n < 1000; ++n) {
      for (int g = 0; g < 4; ++g) cs.AddGpu(n, 40.0);
    }
    scheduler::DiluScheduler sched;
    Rng rng(9);
    state.ResumeTiming();
    for (InstanceId id = 0; id < 3200; ++id) {
      scheduler::PlacementRequest req;
      req.function = id % 200;
      req.quota.request = rng.Uniform(0.1, 0.5);
      req.quota.limit = std::min(1.0, req.quota.request * 2.0);
      req.mem_gb = rng.Uniform(2.0, 20.0);
      req.affinity = {req.function};
      const auto placement = sched.Place(req, cs);
      if (placement.ok) {
        cs.Commit(id, req.function,
                  {{placement.gpus[0], req.quota, req.mem_gb}});
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 3200);
}
BENCHMARK(BM_Schedule3200Instances)->Unit(benchmark::kMillisecond);

/** One RCKM token period for a GPU hosting 8 instances. */
void BM_TokenManagerTick8(benchmark::State& state)
{
  rckm::TokenManager tm;
  std::vector<rckm::InstanceSample> samples;
  for (InstanceId id = 1; id <= 8; ++id) {
    rckm::InstanceSample s;
    s.id = id;
    s.slo_sensitive = (id % 2 == 0);
    s.quota = {0.1, 0.2};
    s.blocks_launched = 50.0 * id;
    s.klc_inflation = id == 2 ? 0.5 : 0.0;
    samples.push_back(s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm.Tick(samples));
  }
}
BENCHMARK(BM_TokenManagerTick8);

/** Event queue schedule+fire throughput. */
void BM_EventQueueScheduleRun(benchmark::State& state)
{
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.ScheduleAt(i, [&sink] { ++sink; });
    }
    while (q.RunOne()) {
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

/** Cost-model evaluation (the profiler's inner loop). */
void BM_CostModelIteration(benchmark::State& state)
{
  const auto& m = models::GetModel("roberta-large");
  double s = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::InferenceIteration(m, 4, s));
    s += 0.001;
    if (s > 1.0) s = 0.1;
  }
}
BENCHMARK(BM_CostModelIteration);

}  // namespace

BENCHMARK_MAIN();
