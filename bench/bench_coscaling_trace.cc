/**
 * @file
 * Fig 12 reproduction: co-scaling trace analysis under a bursty
 * workload — per-interval RPS, deployed instance count, p95 and SVR.
 *
 * The signature behaviour: when a surge hits (the paper frames
 * 200-240 s), fast vertical scale-up absorbs the first seconds, buying
 * time for the lazy scale-out to bring a new instance online without an
 * SLO cliff; instance count steps up shortly after the surge onset.
 */
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "cluster/trace_export.h"

int
main()
{
  using namespace dilu;

  core::System system;  // full Dilu
  const FunctionId fn = system.DeployInference("roberta-large");
  system.Provision(fn, 1);
  system.EnableCoScaling(fn);

  workload::BurstySpec spec;
  spec.duration_s = 400;
  spec.base_rps = 50.0;
  spec.burst_scale = 2.4;
  spec.burst_len_s = 60;
  spec.burst_gap_s = 120;
  const auto env = workload::BuildBurstyTrace(spec);
  system.DriveEnvelope(fn, env, Sec(400));

  // Windowed latency: sample per-10s percentiles through a sink shim.
  struct Window {
    Percentiles lat;
    int violations = 0;
    int total = 0;
  };
  std::map<int, Window> windows;
  const double slo_ms = models::GetModel("roberta-large").slo_ms;
  auto& gw = system.runtime().gateway();
  // Re-route the metrics sink of every instance as it appears.
  system.runtime().simulation().SchedulePeriodic(Sec(1), Sec(1), [&] {
    for (auto* inst : gw.instances(fn)) {
      inst->set_request_sink([&, fnid = fn](const workload::Request& r) {
        system.runtime().metrics().RecordRequest(fnid, r);
        const int w = static_cast<int>(ToSec(r.completed)) / 10;
        Window& win = windows[w];
        win.lat.Add(ToMs(r.Latency()));
        ++win.total;
        if (ToMs(r.Latency()) > slo_ms) ++win.violations;
      });
    }
  });

  system.RunFor(Sec(405));

  std::printf("=== Fig 12: co-scaling trace (RoBERTa-large, bursty) "
              "===\n");
  std::printf("%8s %10s %10s %10s %8s\n", "t(s)", "mean RPS",
              "instances", "p95(ms)", "SVR(%)");
  const auto& series = system.runtime().function(fn).instance_count_series;
  for (int w = 0; w * 10 < spec.duration_s; ++w) {
    double rps = 0.0;
    for (int s = w * 10; s < (w + 1) * 10 && s < spec.duration_s; ++s) {
      rps += env[static_cast<std::size_t>(s)];
    }
    rps /= 10.0;
    int instances = 1;
    for (const auto& [t, n] : series) {
      if (ToSec(t) <= (w + 1) * 10.0) instances = n;
    }
    const Window& win = windows[w];
    std::printf("%8d %10.1f %10d %10.0f %8.2f\n", w * 10, rps, instances,
                win.lat.P95(),
                win.total == 0
                    ? 0.0
                    : 100.0 * win.violations / win.total);
  }
  const auto report = system.MakeInferenceReport(fn);
  std::printf("\noverall: %lld requests, SVR %.2f%%, cold starts %d\n",
              static_cast<long long>(report.completed),
              report.svr_percent, report.cold_starts);
  if (cluster::ExportAll(system.runtime(), "/tmp/dilu_fig12")) {
    std::printf("time series exported to /tmp/dilu_fig12_*.csv\n");
  }
  return 0;
}
