/**
 * @file
 * Fig 8 reproduction: inference-inference collocation.
 *
 * (a) bursty envelopes with initial burst scale factors {4, 6, 6, 4};
 * (b) Poisson arrivals with mean RPS {20, 30, 20, 3}.
 * Reports the first (primary) function's p50/p95 per baseline.
 */
#include <cstdio>

#include "bench_util.h"

int
main()
{
  using namespace dilu;
  using bench::IiCase;

  struct Named {
    IiCase c;
    const char* label;
  };

  std::printf("=== Fig 8(a): bursty distribution (scale 4/6/6/4) ===\n");
  const Named bursty[] = {
      {{"bert-base", "vgg19", 20.0, 15.0, 4.0, Sec(120)}, "bert+vgg"},
      {{"resnet152", "roberta-large", 20.0, 10.0, 6.0, Sec(120)},
       "resnet+roberta"},
      {{"roberta-large", "gpt2-large", 15.0, 8.0, 6.0, Sec(120)},
       "roberta+gpt2"},
      {{"gpt2-large", "bert-base", 8.0, 20.0, 4.0, Sec(120)},
       "gpt2+bert"},
  };
  std::printf("%-18s", "pair");
  for (const auto& b : bench::GpuLevelBaselines()) {
    std::printf(" %14s", b.c_str());
  }
  std::printf("\n");
  for (const auto& n : bursty) {
    std::printf("%-18s", n.label);
    for (const auto& preset : bench::GpuLevelBaselines()) {
      const auto out = bench::RunInferenceInference(preset, n.c);
      std::printf(" %6.0f/%7.0f", out.a.p50_ms, out.a.p95_ms);
    }
    std::printf("\n");
  }

  std::printf("\n=== Fig 8(b): Poisson distribution "
              "(mean RPS 20/30/20/3) ===\n");
  const Named poisson[] = {
      {{"bert-base", "vgg19", 20.0, 15.0, -1.0, Sec(60)}, "bert+vgg"},
      {{"resnet152", "roberta-large", 30.0, 10.0, -1.0, Sec(60)},
       "resnet+roberta"},
      {{"roberta-large", "gpt2-large", 20.0, 6.0, -1.0, Sec(60)},
       "roberta+gpt2"},
      {{"gpt2-large", "roberta-large", 3.0, 15.0, -1.0, Sec(60)},
       "gpt2+roberta"},
  };
  std::printf("%-18s", "pair");
  for (const auto& b : bench::GpuLevelBaselines()) {
    std::printf(" %14s", b.c_str());
  }
  std::printf("\n");
  for (const auto& n : poisson) {
    std::printf("%-18s", n.label);
    for (const auto& preset : bench::GpuLevelBaselines()) {
      const auto out = bench::RunInferenceInference(preset, n.c);
      std::printf(" %6.0f/%7.0f", out.a.p50_ms, out.a.p95_ms);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: TGS p50/p95 blow up by orders of magnitude for "
              "the low-priority function; Dilu cuts MPS-l p95 by ~25%% "
              "via fast vertical scaling; FaST-GS trails MPS-l due to "
              "bookkeeping overhead)\n");

  // TGS detail: the low-priority co-runner's latency (the 442x effect).
  std::printf("\nTGS low-priority detail (resnet+roberta, Poisson):\n");
  for (const char* preset : {"dilu", "tgs"}) {
    const auto out = bench::RunInferenceInference(
        preset, {"resnet152", "roberta-large", 30.0, 10.0, -1.0,
                 Sec(60)});
    std::printf("  %-8s low-priority p50/p95 = %.0f/%.0f ms\n", preset,
                out.b.p50_ms, out.b.p95_ms);
  }
  return 0;
}
