/**
 * @file
 * Shared helpers for the reproduction benches: canonical collocation
 * runners and table formatting. Each bench binary reproduces one table
 * or figure (see DESIGN.md experiment index) and prints paper-style
 * rows; absolute values are simulator outputs, the *shapes* are the
 * reproduction target (EXPERIMENTS.md).
 */
#ifndef DILU_BENCH_BENCH_UTIL_H_
#define DILU_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/system.h"
#include "profiler/inference_profiler.h"
#include "profiler/training_profiler.h"
#include "scheduler/scheduler.h"
#include "workload/azure_traces.h"

namespace dilu::bench {

/**
 * The shared report-emitting bench CLI:
 * --quick / --seed N / --legacy-seeds / --out F.
 */
struct CliOptions {
  bool quick = false;
  std::uint64_t seed = 0;
  /** --seed was given on the command line (vs. the binary's default). */
  bool seed_given = false;
  /**
   * Use the per-suite seeds the historical BENCH_*.json reports were
   * recorded under, ignoring --seed. This used to be spelled
   * `--seed 0`; the sentinel made seed 0 silently un-runnable, so it
   * is now an explicit flag (PERFORMANCE.md).
   */
  bool legacy_seeds = false;
  const char* out = nullptr;
};

/**
 * Parse the shared flags (every unknown argument is a usage error).
 * `default_seed` seeds --seed when absent. Returns false after
 * printing usage.
 */
inline bool
ParseCli(int argc, char** argv, CliOptions* opts,
         std::uint64_t default_seed = 0)
{
  opts->seed = default_seed;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts->quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts->seed = static_cast<std::uint64_t>(
          std::strtoull(argv[++i], nullptr, 10));
      opts->seed_given = true;
    } else if (std::strcmp(argv[i], "--legacy-seeds") == 0) {
      opts->legacy_seeds = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts->out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--seed N] [--legacy-seeds] "
                   "[--out FILE]\n",
                   argv[0]);
      return false;
    }
  }
  return true;
}

/**
 * Run `write(FILE*)` against --out (announcing the path on stderr) or
 * stdout. Returns the process exit code.
 */
template <typename WriteFn>
inline int
EmitReport(const CliOptions& opts, WriteFn&& write)
{
  if (opts.out != nullptr) {
    std::FILE* f = std::fopen(opts.out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opts.out);
      return 1;
    }
    write(f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", opts.out);
  } else {
    write(stdout);
  }
  return 0;
}

/** One instance drawn from the paper's 2:2:6 Fig 17 type mix. */
struct MixInstance {
  scheduler::PlacementRequest request;
  int shards = 1;
};

/**
 * Draw an instance from the 2:2:6 train:LLM-inf:inf mix used by the
 * Fig 17 reproductions (bench_large_scale and the perf harness share
 * this so their instance streams cannot diverge). Training and non-LLM
 * inference draw from the same small-model pool. `quota_mode` mirrors
 * ClusterConfig::quota_mode: "dilu" keeps <request, limit> as
 * profiled, "limit" pins the request to the limit, "full" pins both
 * to 1.0.
 */
inline MixInstance
DrawMixInstance(Rng* rng, const std::string& quota_mode = "dilu")
{
  // Profiles are deterministic per model: cache them in function-local
  // statics (destroyed normally at exit — no leaked `new`).
  static std::map<std::string, profiler::InferenceProfile> inf_cache;
  static std::map<std::string, profiler::TrainingProfile> train_cache;
  static const char* kSmallModelPool[] = {"bert-base", "roberta-large",
                                          "gpt2-large", "vgg19",
                                          "resnet152"};
  static const char* kLlmModelPool[] = {"llama2-7b", "chatglm3-6b"};

  MixInstance def;
  const double roll = rng->Uniform();
  std::string model;
  if (roll < 0.2) {
    // Training worker.
    model = kSmallModelPool[rng->UniformInt(0, 4)];
    const auto& m = models::GetModel(model);
    if (!train_cache.count(model)) {
      train_cache[model] = profiler::TrainingProfiler().Profile(m);
    }
    def.request.type = TaskType::kTraining;
    def.request.quota = train_cache[model].quota;
    def.request.mem_gb = m.mem_gb_training;
  } else {
    const bool llm = roll < 0.4;
    model = llm ? kLlmModelPool[rng->UniformInt(0, 1)]
                : kSmallModelPool[rng->UniformInt(0, 4)];
    const auto& m = models::GetModel(model);
    if (!inf_cache.count(model)) {
      inf_cache[model] = profiler::InferenceProfiler().Profile(m);
    }
    def.request.type = TaskType::kInference;
    def.request.quota = inf_cache[model].quota;
    def.request.mem_gb = m.mem_gb_inference;
    def.request.large_model = llm;
    if (llm && rng->Uniform() < 0.5) {
      def.shards = 2;  // half the LLM instances span two fragments
      def.request.quota.request /= 2;
      def.request.quota.limit /= 2;
      def.request.mem_gb /= 2;
    }
  }
  def.request.gpus_needed = def.shards;
  def.request.function = static_cast<FunctionId>(rng->UniformInt(0, 199));
  def.request.affinity = {def.request.function};
  if (quota_mode == "limit") {
    def.request.quota.request = def.request.quota.limit;
  } else if (quota_mode == "full") {
    def.request.quota = {1.0, 1.0};
  }
  return def;
}

/** The GPU-level baselines compared in Figures 7-10. */
inline const std::vector<std::string>& GpuLevelBaselines()
{
  static const std::vector<std::string>* v = new std::vector<std::string>{
      "exclusive", "dilu", "mps-l", "mps-r", "tgs", "fastgs"};
  return *v;
}

/** Result of one collocated serving run. */
struct CollocationOutcome {
  core::InferenceReport inference;
  double training_tput = 0.0;  ///< natural units (0 if no training fn)
  int gpus_used = 0;
};

/** One training + one inference function collocated on shared GPUs. */
struct TiCase {
  std::string inference_model;
  std::string training_model;
  int training_workers = 1;
  int inference_shards = 1;  ///< >1: LLM over fragmented GPUs
  double rps = 10.0;
  double cv = -1.0;          ///< <0: Poisson; >=0: Gamma(cv)
  TimeUs duration = Sec(60);
};

/**
 * Run a training-inference collocation under `preset`.
 *
 * Placement mirrors the paper's GPU-level experiments: under Exclusive
 * every worker/instance gets its own GPU; under sharing presets each
 * training worker's GPU also hosts one inference shard.
 */
inline CollocationOutcome
RunTrainingInference(const std::string& preset, const TiCase& c)
{
  core::SystemConfig cfg = core::SystemConfig::Preset(preset);
  cfg.cluster.nodes = 2;  // 8 GPUs: room for the exclusive layout
  core::System system(cfg);

  core::FunctionSpec ts;
  ts.model = c.training_model;
  ts.type = TaskType::kTraining;
  ts.workers = c.training_workers;
  const FunctionId train = system.Deploy(ts);

  core::FunctionSpec is;
  is.model = c.inference_model;
  is.type = TaskType::kInference;
  is.shards = c.inference_shards;
  const FunctionId inf = system.Deploy(is);

  std::vector<GpuId> train_gpus;
  for (int w = 0; w < c.training_workers; ++w) train_gpus.push_back(w);
  if (!system.StartTrainingOn(train, train_gpus)) {
    std::fprintf(stderr, "training placement failed\n");
  }
  std::vector<GpuId> inf_gpus;
  if (preset == "exclusive") {
    for (int s = 0; s < c.inference_shards; ++s) {
      inf_gpus.push_back(c.training_workers + s);
    }
  } else {
    for (int s = 0; s < c.inference_shards; ++s) {
      inf_gpus.push_back(s % c.training_workers);
    }
  }
  system.ProvisionOn(inf, inf_gpus);

  if (c.cv < 0.0) {
    system.DrivePoisson(inf, c.rps, c.duration);
  } else {
    system.DriveGamma(inf, c.rps, c.cv, c.duration);
  }
  system.RunFor(c.duration + Sec(2));

  CollocationOutcome out;
  out.inference = system.MakeInferenceReport(inf);
  out.training_tput = system.runtime().TrainingThroughputUnits(train);
  out.gpus_used = system.runtime().state().ActiveGpuCount();
  return out;
}

/** Two inference functions sharing one GPU. */
struct IiCase {
  std::string model_a;
  std::string model_b;
  double rps_a = 10.0;
  double rps_b = 10.0;
  /** Optional bursty envelope replacing Poisson for both. */
  double burst_scale = -1.0;
  TimeUs duration = Sec(60);
};

struct IiOutcome {
  core::InferenceReport a;
  core::InferenceReport b;
};

inline IiOutcome
RunInferenceInference(const std::string& preset, const IiCase& c)
{
  core::SystemConfig cfg = core::SystemConfig::Preset(preset);
  cfg.cluster.nodes = 2;
  core::System system(cfg);
  const FunctionId fa = system.DeployInference(c.model_a);
  core::FunctionSpec sb;
  sb.model = c.model_b;
  sb.type = TaskType::kInference;
  sb.priority = 0;  // TGS treats the co-runner as opportunistic
  const FunctionId fb = system.Deploy(sb);
  if (preset == "exclusive") {
    system.ProvisionOn(fa, {0});
    system.ProvisionOn(fb, {1});
  } else {
    system.ProvisionOn(fa, {0});
    system.ProvisionOn(fb, {0});
  }
  if (c.burst_scale > 0.0) {
    workload::BurstySpec spec;
    spec.duration_s = static_cast<int>(ToSec(c.duration));
    spec.base_rps = c.rps_a;
    spec.burst_scale = c.burst_scale;
    system.DriveEnvelope(fa, workload::BuildBurstyTrace(spec), c.duration);
    spec.base_rps = c.rps_b;
    spec.seed = 11;
    system.DriveEnvelope(fb, workload::BuildBurstyTrace(spec), c.duration);
  } else {
    system.DrivePoisson(fa, c.rps_a, c.duration);
    system.DrivePoisson(fb, c.rps_b, c.duration);
  }
  system.RunFor(c.duration + Sec(2));
  IiOutcome out;
  out.a = system.MakeInferenceReport(fa);
  out.b = system.MakeInferenceReport(fb);
  return out;
}

/** The Fig 17 fleet: 1,000 nodes x 4 GPUs x 40 GB, shared by
 *  bench_large_scale and the perf harness so the cluster shape cannot
 *  diverge between suites. */
inline scheduler::ClusterState MakeFig17Cluster()
{
  scheduler::ClusterState state;
  for (int n = 0; n < 1000; ++n) {
    for (int g = 0; g < 4; ++g) state.AddGpu(n, 40.0);
  }
  return state;
}

/**
 * Fig 17 churn-phase schedule, shared by bench_large_scale and the
 * perf harness so their workloads cannot diverge: 10 ramp-up steps of
 * net growth, then arrivals ~ departures with a 3-step sawtooth.
 */
inline int Fig17ChurnArrivals(int step) { return step < 10 ? 200 : 120; }
inline int Fig17ChurnDepartures(int step)
{
  return step < 10 ? 40 : 120 + (step % 3 == 0 ? 30 : -10);
}

/** Print a rule line for readability. */
inline void Rule() { std::printf("%s\n", std::string(78, '-').c_str()); }

}  // namespace dilu::bench

#endif  // DILU_BENCH_BENCH_UTIL_H_
