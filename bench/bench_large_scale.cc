/**
 * @file
 * Fig 17 reproduction: large-scale cluster simulation — 1000 nodes x
 * 4 GPUs, up to 3,200 DL instances with the paper's 2:2:6 mix of
 * training, LLM inference and non-LLM inference.
 *
 * This is a placement-level simulation (as in the paper): it exercises
 * the schedulers and fragmentation accounting without per-kernel
 * execution. Reports SM/memory fragmentation and occupied GPU counts at
 * 800/1600/2400/3200 instances for Exclusive, INFless+-l and Dilu, plus
 * a churn-phase GPU-count time series.
 */
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "scheduler/baseline_schedulers.h"
#include "scheduler/scheduler.h"

namespace {

using namespace dilu;

std::unique_ptr<scheduler::Scheduler>
MakeSched(const std::string& kind)
{
  if (kind == "exclusive") {
    return std::make_unique<scheduler::ExclusiveScheduler>();
  }
  if (kind == "infless+-l") {
    return std::make_unique<scheduler::StaticQuotaScheduler>("infless+-l",
                                                             1.0);
  }
  return std::make_unique<scheduler::DiluScheduler>();
}

std::string QuotaModeFor(const std::string& kind)
{
  if (kind == "exclusive") return "full";
  if (kind == "infless+-l") return "limit";
  return "dilu";
}

}  // namespace

int
main()
{
  const char* systems[] = {"exclusive", "infless+-l", "dilu"};
  std::printf("=== Fig 17: 1000-node / 4000-GPU simulation, 2:2:6 "
              "train:LLM-inf:inf mix ===\n\n");
  std::printf("%-12s %10s %12s %12s %12s\n", "system", "instances",
              "GPUs used", "SM frag", "mem frag");

  int gpus_at_3200[3] = {0, 0, 0};
  int idx = 0;
  for (const char* sys : systems) {
    Rng rng(42);  // identical instance stream per system
    scheduler::ClusterState state = bench::MakeFig17Cluster();
    auto sched = MakeSched(sys);
    const std::string quota_mode = QuotaModeFor(sys);
    int placed = 0;
    int failed = 0;
    for (InstanceId id = 0; id < 3200; ++id) {
      bench::MixInstance def = bench::DrawMixInstance(&rng, quota_mode);
      const auto placement = sched->Place(def.request, state);
      if (!placement.ok) {
        ++failed;
        continue;
      }
      std::vector<scheduler::ShardCommit> commits;
      for (GpuId g : placement.gpus) {
        commits.push_back({g, def.request.quota, def.request.mem_gb});
      }
      state.Commit(id, def.request.function, commits);
      ++placed;
      if (placed % 800 == 0) {
        std::printf("%-12s %10d %12d %12.2f %12.2f\n", sys, placed,
                    state.ActiveGpuCount(), state.SmFragmentation(),
                    state.MemoryFragmentation());
      }
    }
    gpus_at_3200[idx++] = state.ActiveGpuCount();
    if (failed > 0) {
      std::printf("%-12s (%d placements failed: cluster exhausted)\n",
                  sys, failed);
    }
    std::printf("\n");
  }
  std::printf("cost reduction at 3200 instances: Dilu vs Exclusive "
              "%.0f%%, vs INFless+-l %.0f%%\n",
              100.0 * (1.0 - static_cast<double>(gpus_at_3200[2])
                                 / gpus_at_3200[0]),
              100.0 * (1.0 - static_cast<double>(gpus_at_3200[2])
                                 / gpus_at_3200[1]));
  std::printf("(paper: 30%% vs Exclusive and 23%% vs INFless+-l)\n\n");

  // Churn phase: instances arrive and depart; GPU count over time.
  std::printf("=== Fig 17 (bottom): GPU count over time under churn "
              "===\n");
  std::printf("%8s %12s %12s %12s\n", "step", "exclusive", "infless+-l",
              "dilu");
  struct Churn {
    scheduler::ClusterState state;
    std::unique_ptr<scheduler::Scheduler> sched;
    Rng rng{7};
    std::vector<InstanceId> live;
    InstanceId next = 0;
  };
  Churn churn[3];
  for (int s = 0; s < 3; ++s) {
    churn[s].state = bench::MakeFig17Cluster();
    churn[s].sched = MakeSched(systems[s]);
  }
  for (int step = 0; step <= 20; ++step) {
    std::printf("%8d", step);
    for (int s = 0; s < 3; ++s) {
      Churn& c = churn[s];
      // Ramp up for 10 steps, then churn (arrivals ~ departures).
      const int arrivals = bench::Fig17ChurnArrivals(step);
      const int departures = bench::Fig17ChurnDepartures(step);
      for (int a = 0; a < arrivals; ++a) {
        bench::MixInstance def =
            bench::DrawMixInstance(&c.rng, QuotaModeFor(systems[s]));
        const auto placement = c.sched->Place(def.request, c.state);
        if (!placement.ok) continue;
        std::vector<scheduler::ShardCommit> commits;
        for (GpuId g : placement.gpus) {
          commits.push_back({g, def.request.quota, def.request.mem_gb});
        }
        c.state.Commit(c.next, def.request.function, commits);
        c.live.push_back(c.next++);
      }
      for (int d = 0; d < departures && !c.live.empty(); ++d) {
        const std::size_t victim = static_cast<std::size_t>(
            c.rng.UniformInt(0, static_cast<std::int64_t>(
                                    c.live.size() - 1)));
        c.state.Release(c.live[victim]);
        c.live.erase(c.live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      std::printf(" %12d", c.state.ActiveGpuCount());
    }
    std::printf("\n");
  }
  return 0;
}
