/**
 * @file
 * Table 3 reproduction: horizontal scaling on the three Azure trace
 * archetypes (Bursty, Periodic, Sporadic) comparing FaST-GS+ (eager
 * scaling), INFless+ (prediction + keep-alive) and Dilu (lazy scaling
 * with fast vertical headroom).
 *
 * Metrics: CSC (cold start count), SVR (SLO violation rate), and SGT
 * (GPU time the baseline spends beyond Dilu's).
 */
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace dilu;

struct RunResult {
  int csc = 0;
  double svr = 0.0;
  double gpu_seconds = 0.0;
  long long completed = 0;
};

RunResult RunTrace(const std::string& system_kind,
                   workload::TraceKind trace)
{
  core::SystemConfig cfg;
  std::string policy;
  if (system_kind == "fastgs+") {
    cfg = core::SystemConfig::Preset("fastgs");
    policy = "eager";
  } else if (system_kind == "infless+") {
    cfg = core::SystemConfig::Preset("infless-l");
    policy = "keep-alive";
  } else {
    cfg = core::SystemConfig::Preset("dilu");
    policy = "dilu-lazy";
  }
  cfg.cluster.nodes = 3;
  core::System system(cfg);

  const FunctionId fn = system.DeployInference("roberta-large");
  system.Provision(fn, 1);
  system.EnableCoScaling(fn, policy);

  // The single-instance serving capacity is ~80 rps (RoBERTa-large at
  // IBS=4); burst batching stretches that to ~110 rps transiently, so
  // the archetypes are sized to demand 1-3 instances like the paper's.
  workload::TraceSpec spec;
  spec.duration_s = 600;
  spec.base_rps = 55.0;
  std::vector<double> env;
  if (trace == workload::TraceKind::kBursty) {
    // Few-second-level surges: the regime the paper's lazy scale-out
    // explicitly declines to chase (Section 3.4.2).
    workload::BurstySpec b;
    static_cast<workload::TraceSpec&>(b) = spec;
    b.burst_scale = 2.6;
    b.burst_len_s = 12;
    b.burst_gap_s = 60;
    env = workload::BuildBurstyTrace(b);
  } else if (trace == workload::TraceKind::kPeriodic) {
    workload::PeriodicSpec p;
    static_cast<workload::TraceSpec&>(p) = spec;
    p.base_rps = 60.0;
    p.amplitude = 0.7;
    p.period_s = 150;
    env = workload::BuildPeriodicTrace(p);
  } else {
    workload::SporadicSpec s;
    static_cast<workload::TraceSpec&>(s) = spec;
    s.base_rps = 65.0;
    s.active_fraction = 0.25;
    s.spike_len_s = 30;
    env = workload::BuildSporadicTrace(s);
  }
  system.DriveEnvelope(fn, env, Sec(600));
  system.RunFor(Sec(610));

  RunResult r;
  const auto rep = system.MakeInferenceReport(fn);
  r.csc = rep.cold_starts;
  r.svr = rep.svr_percent;
  r.completed = rep.completed;
  // Flush still-live instances' GPU time by scaling everything in.
  while (system.runtime().ScaleInOne(fn)) {
  }
  system.RunFor(Ms(1));
  r.gpu_seconds = system.runtime().metrics().total_gpu_seconds();
  return r;
}

}  // namespace

int
main()
{
  std::printf("=== Table 3: horizontal scaling on Azure trace "
              "archetypes ===\n");
  std::printf("%-10s %-10s %6s %8s %10s %10s\n", "Trace", "Baseline",
              "CSC", "SVR(%)", "SGT(s)", "requests");
  for (auto trace : {workload::TraceKind::kBursty,
                     workload::TraceKind::kPeriodic,
                     workload::TraceKind::kSporadic}) {
    RunResult dilu = RunTrace("dilu", trace);
    for (const char* sys : {"fastgs+", "infless+", "dilu"}) {
      const RunResult r =
          std::string(sys) == "dilu" ? dilu : RunTrace(sys, trace);
      const double sgt = r.gpu_seconds - dilu.gpu_seconds;
      std::printf("%-10s %-10s %6d %8.2f %10.1f %10lld\n",
                  workload::ToString(trace), sys, r.csc, r.svr,
                  std::string(sys) == "dilu" ? 0.0 : sgt, r.completed);
    }
  }
  std::printf("\n(paper: Dilu cuts CSC by 75-77%% and SVR by 46-67%% vs "
              "INFless+/FaST-GS+ while saving the SGT column of GPU "
              "time)\n");
  return 0;
}
