/**
 * @file
 * Fig 7 reproduction: training-inference collocation.
 *
 * Four model pairs (inference collocated with a training worker set) at
 * the paper's mean RPS values {35, 20, 10, 3}. LLaMA2-7B inference is
 * deployed over 4 fragmented GPUs, each also hosting a training worker
 * (except under Exclusive, which pays for dedicated devices).
 *
 * (a) inference p50/p95 per baseline;
 * (b) collocated training throughput normalized to Exclusive.
 */
#include <cstdio>

#include "bench_util.h"

int
main()
{
  using namespace dilu;
  using bench::TiCase;

  const TiCase cases[] = {
      {"resnet152", "vgg19", 1, 1, 35.0, -1.0, Sec(60)},
      {"roberta-large", "bert-base", 1, 1, 20.0, -1.0, Sec(60)},
      {"gpt2-large", "roberta-large", 1, 1, 10.0, -1.0, Sec(60)},
      {"llama2-7b", "gpt2-large", 4, 4, 3.0, -1.0, Sec(60)},
  };

  std::printf("=== Fig 7(a): inference latency p50/p95 (ms) ===\n");
  std::printf("%-26s", "pair (inf+train, rps)");
  for (const auto& b : bench::GpuLevelBaselines()) {
    std::printf(" %14s", b.c_str());
  }
  std::printf("\n");

  double excl_tput[4] = {0, 0, 0, 0};
  double tput[6][4];
  int ci = 0;
  for (const TiCase& c : cases) {
    std::printf("%-12s+%-9s@%3.0f", c.inference_model.c_str(),
                c.training_model.c_str(), c.rps);
    int bi = 0;
    for (const auto& preset : bench::GpuLevelBaselines()) {
      const auto out = bench::RunTrainingInference(preset, c);
      std::printf(" %6.0f/%7.0f", out.inference.p50_ms,
                  out.inference.p95_ms);
      tput[bi][ci] = out.training_tput;
      if (preset == "exclusive") excl_tput[ci] = out.training_tput;
      ++bi;
    }
    std::printf("\n");
    ++ci;
  }

  std::printf("\n=== Fig 7(b): collocated training throughput "
              "(normalized to Exclusive) ===\n");
  std::printf("%-26s", "pair");
  for (const auto& b : bench::GpuLevelBaselines()) {
    std::printf(" %9s", b.c_str());
  }
  std::printf("\n");
  ci = 0;
  for (const TiCase& c : cases) {
    std::printf("%-12s+%-13s", c.inference_model.c_str(),
                c.training_model.c_str());
    for (int bi = 0; bi < 6; ++bi) {
      std::printf(" %9.2f", tput[bi][ci] / std::max(1.0, excl_tput[ci]));
    }
    std::printf("\n");
    ++ci;
  }
  std::printf("\n(paper: Dilu ~0.97x Exclusive training throughput with "
              "1.24x/1.28x p50/p95 while saving 50%% of GPUs; TGS nearly "
              "stops training; MPS-r raises tail latency)\n");
  return 0;
}
