/**
 * @file
 * Hot-path performance harness: measures the simulator's three hottest
 * layers under wall-clock and throughput counters and emits a
 * machine-readable JSON report (the BENCH_*.json trajectory format, see
 * PERFORMANCE.md for the schema).
 *
 * Suites:
 *  - event_queue_schedule_fire: schedule N events, drain them.
 *  - event_queue_mixed_cancel: schedule/cancel/fire interleaved (the
 *    pattern periodic tasks + batch completions produce).
 *  - token_tick_8: one RCKM token period for a GPU hosting 8 instances.
 *  - sched_micro_3200: synthetic 3,200-instance placement on 4,000 GPUs
 *    (the bench_sched_micro workload, self-timed so the harness has no
 *    Google Benchmark dependency).
 *  - fig17_placement: the paper's Fig 17 large-scale pass — 3,200
 *    instances with the 2:2:6 train:LLM-inf:inf mix under the Dilu
 *    scheduler (placement only, as in the paper).
 *  - fig17_churn: 21 churn steps (0..20) of arrivals/departures at
 *    Fig 17 scale.
 *  - fabric_transfer_1k: mixed storage/network transfer submission
 *    throughput through a 1,000-node fabric plane (BENCH_03).
 *  - fabric_ckpt_stall_1k / fabric_ckpt_stall_10k: checkpoint-storm
 *    rounds at 1k and 10k concurrent jobs — the O(1) frontier model's
 *    scaling headroom (BENCH_03).
 *
 * Flags:
 *  --quick      fewer repetitions (CI smoke; timing still reported)
 *  --seed N     workload seed for the scheduler suites, echoed into the
 *               JSON so runs are reproducible and diffable across
 *               machines (any value is a real seed, including 0)
 *  --legacy-seeds  use the historical per-suite seeds (42/9/7) the
 *               checked-in BENCH_*.json reports were recorded under;
 *               also the default when --seed is absent. This replaces
 *               the old `--seed 0` sentinel (PERFORMANCE.md).
 *  --out FILE   write the JSON report to FILE instead of stdout
 *
 * Each suite runs `reps` times and reports the best (minimum) wall
 * clock, which is the standard way to suppress scheduler noise on a
 * shared machine.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/utsname.h>
#endif

#include "bench_util.h"
#include "common/random.h"
#include "fabric/fabric.h"
#include "rckm/token_manager.h"
#include "scheduler/scheduler.h"
#include "sim/event_queue.h"

namespace {

using namespace dilu;
// dilu-lint: allow(wall-clock the bench harness measures real elapsed time by design)
using Clock = std::chrono::steady_clock;

struct BenchResult {
  std::string name;
  std::int64_t ops = 0;       ///< operations per repetition
  int reps = 0;               ///< repetitions executed
  double best_wall_ms = 0.0;  ///< minimum wall clock over reps
  double ops_per_sec = 0.0;   ///< ops / best_wall
};

double ElapsedMs(Clock::time_point start)
{
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/** Run `body` `reps` times; record the best wall clock. */
template <typename Body>
BenchResult RunBench(const std::string& name, std::int64_t ops, int reps,
                     Body&& body)
{
  BenchResult r;
  r.name = name;
  r.ops = ops;
  r.reps = reps;
  r.best_wall_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto start = Clock::now();
    body();
    r.best_wall_ms = std::min(r.best_wall_ms, ElapsedMs(start));
  }
  r.ops_per_sec = r.best_wall_ms > 0.0
      ? static_cast<double>(r.ops) / (r.best_wall_ms / 1e3)
      : 0.0;
  std::fprintf(stderr, "%-28s %10.3f ms   %12.0f ops/s\n", name.c_str(),
               r.best_wall_ms, r.ops_per_sec);
  return r;
}

// --- event queue suites ----------------------------------------------

volatile int g_sink = 0;

BenchResult BenchEventScheduleFire(bool quick)
{
  // Sliding-window pattern matching the simulator's real behavior: the
  // queue holds one event per periodic task / in-flight batch (a few
  // thousand), and each fired event schedules a successor.
  const int kDepth = 5000;
  const int kOps = quick ? 50000 : 500000;
  const int reps = quick ? 3 : 8;
  return RunBench("event_queue_schedule_fire", kOps, reps, [&] {
    sim::EventQueue q;
    // Non-monotone insertion times exercise the heap (pure FIFO would
    // degenerate to an append).
    for (int i = 0; i < kDepth; ++i) {
      q.ScheduleAt((i * 7) % 1000, [] { ++g_sink; });
    }
    for (int i = 0; i < kOps; ++i) {
      q.RunOne();
      q.ScheduleAt(q.now() + 1 + (i * 13) % 1000, [] { ++g_sink; });
    }
    while (q.RunOne()) {
    }
  });
}

BenchResult BenchEventMixedCancel(bool quick)
{
  const int kRounds = quick ? 5000 : 50000;
  const int reps = quick ? 3 : 8;
  // Per round: schedule 4, cancel 2, fire 2 -> 6 queue ops.
  return RunBench("event_queue_mixed_cancel", kRounds * 6, reps, [&] {
    sim::EventQueue q;
    sim::EventId pending[4];
    for (int r = 0; r < kRounds; ++r) {
      const TimeUs base = q.now();
      for (int i = 0; i < 4; ++i) {
        pending[i] = q.ScheduleAt(base + 1 + (i * 7) % 11,
                                  [] { ++g_sink; });
      }
      q.Cancel(pending[1]);
      q.Cancel(pending[3]);
      q.RunOne();
      q.RunOne();
      q.RunUntil(base + 20);
    }
  });
}

// --- RCKM token suite -------------------------------------------------

BenchResult BenchTokenTick(bool quick)
{
  const int kTicks = quick ? 20000 : 200000;
  const int reps = quick ? 3 : 8;
  rckm::TokenManager tm;
  std::vector<rckm::InstanceSample> samples;
  for (InstanceId id = 1; id <= 8; ++id) {
    rckm::InstanceSample s;
    s.id = id;
    s.slo_sensitive = (id % 2 == 0);
    s.quota = {0.1, 0.2};
    s.blocks_launched = 50.0 * id;
    s.klc_inflation = id == 2 ? 0.5 : 0.0;
    samples.push_back(s);
  }
  return RunBench("token_tick_8", kTicks, reps, [&] {
    for (int t = 0; t < kTicks; ++t) {
      const auto& grants = tm.Tick(samples);
      g_sink += static_cast<int>(grants.size());
    }
  });
}

// --- scheduler suites -------------------------------------------------

/**
 * Per-suite workload seed: legacy mode keeps the historical constants
 * (42/9/7), so default runs stay diffable against existing
 * BENCH_*.json files; a user seed derives distinct per-suite streams
 * from one number (seed 0 included — there is no sentinel).
 */
std::uint64_t SuiteSeed(const dilu::bench::CliOptions& opts,
                        std::uint64_t legacy, std::uint64_t index)
{
  const bool use_legacy = opts.legacy_seeds || !opts.seed_given;
  return use_legacy ? legacy : opts.seed + index;
}

BenchResult BenchSchedMicro(bool quick, const bench::CliOptions& opts)
{
  const int reps = quick ? 2 : 5;
  return RunBench("sched_micro_3200", 3200, reps, [&] {
    scheduler::ClusterState cs = bench::MakeFig17Cluster();
    scheduler::DiluScheduler sched;
    Rng rng(SuiteSeed(opts, 9, 1));
    for (InstanceId id = 0; id < 3200; ++id) {
      scheduler::PlacementRequest req;
      req.function = id % 200;
      req.quota.request = rng.Uniform(0.1, 0.5);
      req.quota.limit = std::min(1.0, req.quota.request * 2.0);
      req.mem_gb = rng.Uniform(2.0, 20.0);
      req.affinity = {req.function};
      const auto placement = sched.Place(req, cs);
      if (placement.ok) {
        cs.Commit(id, req.function,
                  {{placement.gpus[0], req.quota, req.mem_gb}});
      }
    }
  });
}

BenchResult BenchFig17Placement(bool quick, const bench::CliOptions& opts)
{
  const int reps = quick ? 2 : 5;
  return RunBench("fig17_placement", 3200, reps, [&] {
    Rng rng(SuiteSeed(opts, 42, 2));
    scheduler::ClusterState state = bench::MakeFig17Cluster();
    scheduler::DiluScheduler sched;
    for (InstanceId id = 0; id < 3200; ++id) {
      bench::MixInstance def = bench::DrawMixInstance(&rng);
      const auto placement = sched.Place(def.request, state);
      if (!placement.ok) continue;
      std::vector<scheduler::ShardCommit> commits;
      for (GpuId g : placement.gpus) {
        commits.push_back({g, def.request.quota, def.request.mem_gb});
      }
      state.Commit(id, def.request.function, commits);
    }
    g_sink += state.ActiveGpuCount();
  });
}

BenchResult BenchFig17Churn(bool quick, const bench::CliOptions& opts)
{
  const int reps = quick ? 1 : 3;
  const int kSteps = 20;
  // ops = total arrivals across steps 0..20 (10 ramp + 11 churn).
  return RunBench("fig17_churn", 10 * 200 + 11 * 120, reps, [&] {
    Rng rng(SuiteSeed(opts, 7, 3));
    scheduler::ClusterState state = bench::MakeFig17Cluster();
    scheduler::DiluScheduler sched;
    std::vector<InstanceId> live;
    InstanceId next = 0;
    for (int step = 0; step <= kSteps; ++step) {
      const int arrivals = bench::Fig17ChurnArrivals(step);
      const int departures = bench::Fig17ChurnDepartures(step);
      for (int a = 0; a < arrivals; ++a) {
        bench::MixInstance def = bench::DrawMixInstance(&rng);
        const auto placement = sched.Place(def.request, state);
        if (!placement.ok) continue;
        std::vector<scheduler::ShardCommit> commits;
        for (GpuId g : placement.gpus) {
          commits.push_back({g, def.request.quota, def.request.mem_gb});
        }
        state.Commit(next, def.request.function, commits);
        live.push_back(next++);
      }
      for (int d = 0; d < departures && !live.empty(); ++d) {
        const std::size_t victim = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(live.size() - 1)));
        state.Release(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }
    g_sink += state.ActiveGpuCount();
  });
}

// --- fabric suites ----------------------------------------------------

BenchResult BenchFabricTransfer(bool quick)
{
  const int kOps = quick ? 20000 : 200000;
  const int reps = quick ? 3 : 8;
  return RunBench("fabric_transfer_1k", kOps, reps, [&] {
    fabric::FabricConfig cfg;
    cfg.enabled = true;
    cfg.storage_devices = 8;
    fabric::FabricPlane fp(cfg, 1000, 11);
    Rng rng(11);
    TimeUs now = 0;
    for (int i = 0; i < kOps; ++i) {
      now += 5;
      const NodeId src = static_cast<NodeId>(i % 1000);
      if ((i & 1) == 0) {
        fp.SubmitStorage(src, rng.Uniform(0.05, 0.5), now);
      } else {
        fp.SubmitNetwork(src, static_cast<NodeId>((i * 7) % 1000),
                         rng.Uniform(0.01, 0.1), now);
      }
      // Periodic 1 Hz-style sampling keeps the flight queues harvested,
      // matching the runtime's real usage pattern.
      if ((i & 4095) == 0) fp.Sample(now);
    }
    g_sink += fp.totals().max_queue;
  });
}

BenchResult BenchFabricCheckpointStall(bool quick, int jobs,
                                       const std::string& name)
{
  // Checkpoint storm: every job snapshots 1.65 GB (vgg19 x3) into a
  // 16-device store each round; the frontier model resolves each storm
  // in O(jobs) regardless of how deep the emergent stalls get.
  const int kRounds = 4;
  const int reps = quick ? 2 : 5;
  return RunBench(name, static_cast<std::int64_t>(jobs) * kRounds, reps,
                  [&] {
    fabric::FabricConfig cfg;
    cfg.enabled = true;
    cfg.storage_devices = 16;
    fabric::FabricPlane fp(cfg, jobs, 13);
    TimeUs now = 0;
    for (int r = 0; r < kRounds; ++r) {
      for (int j = 0; j < jobs; ++j) {
        fp.SubmitStorage(static_cast<NodeId>(j), 1.65, now);
      }
      now += Sec(600);
      fp.Sample(now);  // harvest the drained round
    }
    g_sink += fp.totals().max_queue;
  });
}

// --- report -----------------------------------------------------------

std::string MachineString()
{
#ifndef _WIN32
  struct utsname u;
  if (uname(&u) == 0) {
    return std::string(u.sysname) + " " + u.release + " " + u.machine;
  }
#endif
  return "unknown";
}

void WriteJson(std::FILE* out, const std::vector<BenchResult>& results,
               bool quick, const bench::CliOptions& opts)
{
  const bool legacy = opts.legacy_seeds || !opts.seed_given;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"dilu-bench/1\",\n");
  std::fprintf(out, "  \"machine\": \"%s\",\n", MachineString().c_str());
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(opts.seed));
  std::fprintf(out, "  \"legacy_seeds\": %s,\n",
               legacy ? "true" : "false");
#ifdef NDEBUG
  std::fprintf(out, "  \"build\": \"Release\",\n");
#else
  std::fprintf(out, "  \"build\": \"Debug\",\n");
#endif
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"ops\": %lld, \"reps\": %d, "
                 "\"best_wall_ms\": %.4f, \"ops_per_sec\": %.1f}%s\n",
                 r.name.c_str(), static_cast<long long>(r.ops), r.reps,
                 r.best_wall_ms, r.ops_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int
main(int argc, char** argv)
{
  bench::CliOptions opts;
  if (!bench::ParseCli(argc, argv, &opts)) return 2;

  std::vector<BenchResult> results;
  results.push_back(BenchEventScheduleFire(opts.quick));
  results.push_back(BenchEventMixedCancel(opts.quick));
  results.push_back(BenchTokenTick(opts.quick));
  results.push_back(BenchSchedMicro(opts.quick, opts));
  results.push_back(BenchFig17Placement(opts.quick, opts));
  results.push_back(BenchFig17Churn(opts.quick, opts));
  results.push_back(BenchFabricTransfer(opts.quick));
  results.push_back(
      BenchFabricCheckpointStall(opts.quick, 1000, "fabric_ckpt_stall_1k"));
  results.push_back(
      BenchFabricCheckpointStall(opts.quick, 10000, "fabric_ckpt_stall_10k"));

  return bench::EmitReport(opts, [&](std::FILE* f) {
    WriteJson(f, results, opts.quick, opts);
  });
}
